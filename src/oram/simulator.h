// The ideal-functionality simulator from the security proof (Appendix B).
//
// The UC argument shows Obladi secure by exhibiting a simulator S_A that,
// knowing only the epoch *shape* (batch counts and sizes — information F_Ob
// deliberately leaks), produces an adversary view indistinguishable from the
// real protocol's. This header makes that simulator executable: it generates
// the storage-visible request schedule for an epoch from the configuration
// alone — no workload, no data. Tests compare its statistics against the real
// ORAM's recorded trace; a detectable divergence would falsify the proof's
// premise for this implementation.
#ifndef OBLADI_SRC_ORAM_SIMULATOR_H_
#define OBLADI_SRC_ORAM_SIMULATOR_H_

#include <vector>

#include "src/crypto/csprng.h"
#include "src/oram/config.h"
#include "src/oram/path.h"
#include "src/oram/trace.h"

namespace obladi {

struct SimulatedEpoch {
  // Per read batch: the uniformly random leaves whose paths are read.
  std::vector<std::vector<Leaf>> batch_leaves;
  // Leaves of the deterministic evictions scheduled by the epoch's accesses.
  std::vector<Leaf> eviction_leaves;
  uint64_t access_count_after = 0;
  uint64_t evict_count_after = 0;
};

class IdealTraceSimulator {
 public:
  IdealTraceSimulator(const RingOramConfig& config, uint64_t seed)
      : config_(config), rng_(seed) {}

  // Simulate one epoch of R read batches of size b_read plus a write batch of
  // size b_write, starting from the given counters. Knows nothing about the
  // workload: every request is a uniformly random path; evictions follow the
  // fixed reverse-lexicographic schedule.
  SimulatedEpoch SimulateEpoch(size_t read_batches, size_t read_batch_size,
                               size_t write_batch_size, uint64_t access_count,
                               uint64_t evict_count) {
    SimulatedEpoch epoch;
    for (size_t b = 0; b < read_batches; ++b) {
      std::vector<Leaf> leaves(read_batch_size);
      for (auto& leaf : leaves) {
        leaf = static_cast<Leaf>(rng_.Uniform(config_.num_leaves()));
        if (++access_count % config_.a == 0) {
          epoch.eviction_leaves.push_back(EvictionLeaf(evict_count++, config_.num_levels));
        }
      }
      epoch.batch_leaves.push_back(std::move(leaves));
    }
    // Dummiless writes: no path reads, but the eviction clock still ticks.
    for (size_t w = 0; w < write_batch_size; ++w) {
      if (++access_count % config_.a == 0) {
        epoch.eviction_leaves.push_back(EvictionLeaf(evict_count++, config_.num_levels));
      }
    }
    epoch.access_count_after = access_count;
    epoch.evict_count_after = evict_count;
    return epoch;
  }

  // Histogram of leaf frequencies over many simulated epochs — the reference
  // distribution tests compare real traces against.
  std::vector<uint64_t> LeafHistogram(size_t epochs, size_t read_batches,
                                      size_t read_batch_size, size_t write_batch_size) {
    std::vector<uint64_t> counts(config_.num_leaves(), 0);
    uint64_t access = 0;
    uint64_t evict = 0;
    for (size_t e = 0; e < epochs; ++e) {
      SimulatedEpoch epoch =
          SimulateEpoch(read_batches, read_batch_size, write_batch_size, access, evict);
      for (const auto& batch : epoch.batch_leaves) {
        for (Leaf leaf : batch) {
          counts[leaf]++;
        }
      }
      access = epoch.access_count_after;
      evict = epoch.evict_count_after;
    }
    return counts;
  }

 private:
  RingOramConfig config_;
  Csprng rng_;
};

// Two-sample chi-square statistic between leaf histograms (same total mass
// not required; both are normalized). Used by tests with a generous
// threshold: the statistic concentrates around the degrees of freedom when
// the distributions match.
inline double ChiSquareDistance(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  double total_a = 0;
  double total_b = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    total_a += static_cast<double>(a[i]);
    total_b += static_cast<double>(b[i]);
  }
  if (total_a == 0 || total_b == 0) {
    return 0;
  }
  double chi2 = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double pa = static_cast<double>(a[i]) / total_a;
    double pb = static_cast<double>(b[i]) / total_b;
    double expected = (pa + pb) / 2;
    if (expected > 0) {
      chi2 += (pa - expected) * (pa - expected) / expected +
              (pb - expected) * (pb - expected) / expected;
    }
  }
  return chi2 * (total_a + total_b) / 2;
}

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_SIMULATOR_H_
