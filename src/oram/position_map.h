// Position map: block id -> leaf. Block ids are dense (the proxy's key
// directory allocates them), so this is a flat array. Tracks dirty entries
// between checkpoints for the delta-checkpoint optimization (§8).
#ifndef OBLADI_SRC_ORAM_POSITION_MAP_H_
#define OBLADI_SRC_ORAM_POSITION_MAP_H_

#include <unordered_set>
#include <vector>

#include "src/common/serde.h"
#include "src/common/types.h"

namespace obladi {

class PositionMap {
 public:
  explicit PositionMap(uint64_t capacity = 0) : leaves_(capacity, kInvalidLeaf) {}

  uint64_t capacity() const { return leaves_.size(); }

  Leaf Get(BlockId id) const { return leaves_[id]; }

  void Set(BlockId id, Leaf leaf) {
    leaves_[id] = leaf;
    dirty_.insert(id);
  }

  bool Contains(BlockId id) const { return id < leaves_.size() && leaves_[id] != kInvalidLeaf; }

  // --- checkpointing ---
  size_t dirty_count() const { return dirty_.size(); }

  // Serialize dirty entries (id, leaf pairs) and clear the dirty set.
  Bytes SerializeDelta() {
    BinaryWriter w;
    w.PutU32(static_cast<uint32_t>(dirty_.size()));
    for (BlockId id : dirty_) {
      w.PutU64(id);
      w.PutU32(leaves_[id]);
    }
    dirty_.clear();
    return w.Take();
  }

  void ApplyDelta(const Bytes& delta) {
    BinaryReader r(delta);
    uint32_t n = r.GetU32();
    for (uint32_t i = 0; i < n; ++i) {
      BlockId id = r.GetU64();
      Leaf leaf = r.GetU32();
      if (id < leaves_.size()) {  // padding entries carry kInvalidBlockId
        leaves_[id] = leaf;
      }
    }
  }

  Bytes SerializeFull() const {
    BinaryWriter w(leaves_.size() * 4 + 8);
    w.PutU64(leaves_.size());
    for (Leaf l : leaves_) {
      w.PutU32(l);
    }
    return w.Take();
  }

  static PositionMap DeserializeFull(const Bytes& data) {
    BinaryReader r(data);
    uint64_t n = r.GetU64();
    PositionMap m(n);
    for (uint64_t i = 0; i < n; ++i) {
      m.leaves_[i] = r.GetU32();
    }
    return m;
  }

  void ClearDirty() { dirty_.clear(); }

 private:
  std::vector<Leaf> leaves_;
  std::unordered_set<BlockId> dirty_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_POSITION_MAP_H_
