#include "src/oram/config.h"

namespace obladi {

void RingOramConfig::ParametersForZ(uint32_t z, uint32_t* a, uint32_t* s) {
  // Published (Z, A, S) points from the Ring ORAM analytic model; Obladi's
  // evaluation uses Z=100 -> (A=168, S=196).
  struct Point {
    uint32_t z, a, s;
  };
  static const Point kTable[] = {
      {2, 1, 4}, {4, 3, 6}, {8, 8, 14}, {16, 20, 28}, {32, 46, 60}, {100, 168, 196},
  };
  for (const Point& p : kTable) {
    if (p.z == z) {
      *a = p.a;
      *s = p.s;
      return;
    }
  }
  // Large-Z asymptotics: A ≈ 1.68 Z, S ≈ 1.96 Z. Clamp A >= 1.
  uint32_t a_est = static_cast<uint32_t>(1.68 * z);
  *a = a_est == 0 ? 1 : a_est;
  *s = static_cast<uint32_t>(1.96 * z) + 1;
}

RingOramConfig RingOramConfig::ForCapacity(uint64_t n, uint32_t z, size_t payload_size) {
  RingOramConfig cfg;
  cfg.capacity = n;
  cfg.z = z;
  ParametersForZ(z, &cfg.a, &cfg.s);
  cfg.block_payload_size = payload_size;

  // Smallest L with 2^(L-1) * A >= N (at least 2 levels).
  uint32_t levels = 2;
  while ((static_cast<uint64_t>(1) << (levels - 1)) * cfg.a < n && levels < 31) {
    ++levels;
  }
  cfg.num_levels = levels;

  // Stash overflow bound for padding/logging. Ring ORAM's stash is O(1) in N
  // w.h.p.; a multiple of Z plus per-level slack is comfortably above the
  // empirical occupancy and is what we pad durability checkpoints to.
  cfg.max_stash_blocks = 4 * static_cast<size_t>(z) + 2 * levels + 32;
  return cfg;
}

Status RingOramConfig::Validate() const {
  if (capacity == 0) {
    return Status::InvalidArgument("capacity must be > 0");
  }
  if (z == 0 || s == 0 || a == 0) {
    return Status::InvalidArgument("Z, S, A must all be > 0");
  }
  if (num_levels < 2 || num_levels > 31) {
    return Status::InvalidArgument("num_levels out of range");
  }
  if (block_payload_size == 0) {
    return Status::InvalidArgument("block payload size must be > 0");
  }
  if (capacity > static_cast<uint64_t>(num_leaves()) * a) {
    return Status::InvalidArgument("tree too small for capacity (need 2^(L-1)*A >= N)");
  }
  return Status::Ok();
}

}  // namespace obladi
