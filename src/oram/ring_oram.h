// Ring ORAM with Obladi's epoch-parallel executor (§4, §6.3, §7).
//
// One class supports three execution modes, selected by RingOramOptions:
//
//  * Sequential     (parallel=false): canonical Ring ORAM. Every physical read
//    and every eviction/reshuffle write executes synchronously, one at a time.
//    This is the "Sequential" series of Figure 10a.
//
//  * Parallel, immediate writes (parallel=true, defer_writes=false): physical
//    reads of a batch run concurrently on an I/O pool, but each evict-path /
//    early-reshuffle still performs its write phase at its trigger point,
//    which forces a barrier (all in-flight reads must land before the stash
//    can be flushed — the timing-channel argument of §7). This is the
//    "Normal" series of Figure 10d.
//
//  * Parallel, deferred writes (both true): Obladi's design. Within an epoch
//    only reads touch the server; eviction and reshuffle *read phases* run at
//    their scheduled points, while all write phases are planned and flushed
//    at FinishEpoch with per-bucket deduplication (a bucket rewritten k times
//    in an epoch is physically written once, at its k-th version). Buckets
//    already consumed by an eviction are served from the proxy buffer for the
//    rest of the epoch (Lemma 2's "read exactly once").
//
// Epoch retirement (the pipelined epoch state machine): FinishEpoch is the
// composition of three stages so the proxy can overlap epoch N's write-back
// with epoch N+1's execution:
//
//    BeginRetire()       plan all deferred write phases, snapshot each
//                        rewritten bucket's materialization inputs (version,
//                        permutation, blocks) into a self-contained plan,
//                        and hand encrypt+submit to the I/O pool; advance to
//                        the next epoch. The rewritten buckets' plaintext
//                        contents stay buffered in a "retiring" set. The
//                        caller pays neither the crypto nor the network.
//    AwaitRetireDurable  block until every image is durable on the server.
//                        Touches no ORAM metadata lock, so a concurrent
//                        batch of the next epoch cannot deadlock against it.
//    CollectRetired()    drop the retiring buffers; subsequent accesses read
//                        the (now durable) new versions physically.
//
// While a bucket is retiring, its new version may not be readable on the
// server yet, so the next epoch serves it from the proxy: path levels through
// a retiring bucket skip their physical read (the same proxy-buffer serving
// as Lemma 2 — the in-flight version has been read zero times), a logical
// access targeting a block inside one deposits the buffered value straight
// into the stash, and an eviction/reshuffle read phase absorbs the whole
// buffered bucket into the stash with no physical reads. Which buckets
// retire is exactly the adversary-visible write set of epoch N, and the skip
// window closes at a schedule-driven point (retirement completion), so the
// observable shape stays workload independent.
//
// Security-relevant behaviours implemented here:
//  * every access remaps its block to a fresh uniform leaf (path invariant);
//  * no physical slot is read twice between bucket writes (bucket invariant);
//  * dummy requests (id == kInvalidBlockId) read a full random path;
//  * writes are "dummiless" (§6.3): they update the stash directly and only
//    advance the eviction schedule;
//  * blocks resident in the stash still trigger full dummy path reads, unless
//    the insecure cache_all_stash ablation is enabled (used by tests to
//    demonstrate the §6.3 skew).
#ifndef OBLADI_SRC_ORAM_RING_ORAM_H_
#define OBLADI_SRC_ORAM_RING_ORAM_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/crypto/csprng.h"
#include "src/crypto/encryptor.h"
#include "src/oram/block_codec.h"
#include "src/oram/bucket_meta.h"
#include "src/oram/config.h"
#include "src/oram/position_map.h"
#include "src/oram/stash.h"
#include "src/oram/trace.h"
#include "src/storage/bucket_store.h"

namespace obladi {

struct RingOramOptions {
  bool parallel = true;
  bool defer_writes = true;      // delayed visibility (§7); requires parallel
  bool parallel_crypto = true;   // decrypt/encrypt on pool workers vs. one at a time
  bool cache_all_stash = false;  // INSECURE ablation for the §6.3 skew demonstration
  bool verify_decoded_ids = true;  // disable when running on DummyBucketStore
  bool enable_trace = false;       // record the adversary-visible physical trace
  // Server-side XOR path reads (Ren et al.'s XOR technique): a logical
  // access's (L+1)-slot path read is fetched as one kReadPathsXor request —
  // the server returns every slot's nonce/tag header plus the XOR of the
  // ciphertext bodies, and the proxy regenerates the non-target dummy
  // bodies (deterministic plaintexts, stream cipher) to recover the one
  // real ciphertext. Download per path drops from (L+1) slot ciphertexts
  // to ~1. The slots the server touches are unchanged, so the observable
  // request shape is identical. Takes effect in parallel + deferred mode
  // against stores serving genuine ciphertexts (i.e. requires
  // verify_decoded_ids — DummyBucketStore's static garbage cannot be
  // XOR-reconstructed); eviction/reshuffle bucket reads (several real
  // blocks per bucket) stay slot-by-slot.
  bool xor_path_reads = true;
  // Sub-epoch scheduler: dispatch eviction/early-reshuffle *read phases* as
  // soon as the schedule emits them (AdvanceWriteSchedule) instead of
  // parking them until the next batch's dispatch wave. The slots fetched
  // and the recorded trace are identical — the pulls only move earlier in
  // time, overlapping the next batch's plan logging (§8's WAL append) and
  // answer delivery. Requires parallel + defer_writes; inert otherwise.
  bool eager_evict_dispatch = true;
  // Epoch retirements allowed in flight at once (pipeline depth D).
  // BeginRetire fails when `retire_depth` epochs are already retiring and
  // none has been collected; AwaitRetireDurable/CollectRetired operate on
  // the oldest in-flight retirement (FIFO). 1 reproduces the depth-1
  // pipeline exactly.
  size_t retire_depth = 1;
  size_t io_threads = 32;
};

struct RingOramStats {
  uint64_t logical_accesses = 0;
  uint64_t physical_slot_reads = 0;
  uint64_t physical_bucket_writes = 0;
  uint64_t planned_bucket_rewrites = 0;  // pre-dedup rewrite count
  uint64_t evictions = 0;
  uint64_t early_reshuffles = 0;
  uint64_t buffered_bucket_skips = 0;  // path levels served from the epoch buffer
  uint64_t retiring_bucket_skips = 0;  // path levels served from a retiring bucket
  uint64_t xor_path_reads = 0;         // path reads fetched via kReadPathsXor
  uint64_t stash_cache_skips = 0;      // accesses skipped by cache_all_stash (ablation)
  uint64_t early_results = 0;          // batch answers delivered before batch completion
  uint64_t eager_evict_dispatches = 0; // eviction read waves dispatched ahead of a batch
  uint64_t flush_plan_us = 0;          // FinishEpoch: planning deferred write phases
  uint64_t materialize_us = 0;         // FinishEpoch: encrypt + write buckets
  uint64_t write_drain_us = 0;         // FinishEpoch: waiting on handed-off writes
};

class RingOram {
 public:
  RingOram(RingOramConfig config, RingOramOptions options, std::shared_ptr<BucketStore> store,
           std::shared_ptr<Encryptor> encryptor, uint64_t seed);
  ~RingOram();

  RingOram(const RingOram&) = delete;
  RingOram& operator=(const RingOram&) = delete;

  const RingOramConfig& config() const { return config_; }
  const RingOramOptions& options() const { return options_; }

  // Bulk-load initial block values; values[i] is the payload of BlockId i.
  // Buckets are packed bottom-up and written at version 0.
  Status Initialize(const std::vector<Bytes>& values);

  // Execute a batch of logical reads. Entries equal to kInvalidBlockId are
  // padding requests (a full random-path dummy read). Returns payloads
  // aligned with ids (empty for padding). Blocks until all values arrived.
  StatusOr<std::vector<Bytes>> ReadBatch(const std::vector<BlockId>& ids);

  // Early-answer form (the scheduler's access_r stage): `early` fires with
  // (batch index, payload) as soon as that access's path group decrypts —
  // before the rest of the batch completes — from an I/O pool thread. Every
  // invocation happens-before ReadBatch returns; slots never fire twice,
  // and slots resolved only at batch completion (stash-resident values,
  // padding) do not fire at all — the returned vector remains the complete
  // answer set either way. The callback must be thread-safe and cheap.
  using EarlyResultFn = std::function<void(size_t, const Bytes&)>;
  StatusOr<std::vector<Bytes>> ReadBatch(const std::vector<BlockId>& ids,
                                         const EarlyResultFn& early);

  // Recovery replay (§8): re-executes a logged batch. Padding requests reuse
  // the logged leaves; real requests must match the restored position map.
  StatusOr<std::vector<Bytes>> ReplayReadBatch(const BatchPlan& plan);

  // Dummiless buffered writes. The batch is padded (by counter bumps) to
  // padded_size so the eviction schedule is workload independent.
  // Equivalent to AdvanceWriteSchedule(padded_size) + ApplyWriteValues.
  Status WriteBatch(const std::vector<std::pair<BlockId, Bytes>>& writes, size_t padded_size);

  // Split form for the pipelined proxy: the write batch's schedule advance
  // is a fixed count per epoch (padded), independent of the values — so its
  // eviction/reshuffle *read phases* can ride the epoch's paced read
  // batches instead of bunching into one storage wave at the close.
  // AdvanceWriteSchedule bumps the access counter `bumps` times (emitting
  // any triggered read phases as pending reads for the next dispatch);
  // ApplyWriteValues deposits the decided values with NO schedule movement.
  // Per epoch, Advance totals must equal what WriteBatch would have padded
  // to, or the schedule stops being workload independent.
  void AdvanceWriteSchedule(size_t bumps);
  Status ApplyWriteValues(const std::vector<std::pair<BlockId, Bytes>>& writes);

  // Flush deferred eviction/reshuffle write phases and all buffered bucket
  // writes (deduplicated); advances to the next epoch. Equivalent to
  // BeginRetire() + AwaitRetireDurable() + CollectRetired().
  Status FinishEpoch();

  // --- pipelined epoch retirement (see file comment) ---
  // Plan the epoch's deferred write-back, hand its encryption + submission
  // to the I/O pool, and advance to the next epoch. The rewritten buckets
  // stay buffered as a retiring *generation* so the next epoch's accesses
  // can be served while the flush is in flight. Up to `retire_depth`
  // generations may be in flight at once (FIFO); BeginRetire fails when the
  // window is full and nothing has been collected.
  Status BeginRetire();
  // Wait until the *oldest* in-flight retirement's images are durable on
  // the server; returns its first write-back error. Takes no ORAM metadata
  // lock: safe to call while a next-epoch batch is executing.
  Status AwaitRetireDurable();
  // Drop the oldest retiring generation's buffers (call only after its
  // AwaitRetireDurable) and bank its version floors for the next
  // TruncateStaleVersions call.
  void CollectRetired();
  // In-flight retiring generations (0..retire_depth).
  size_t RetiringGenerations() const;
  // In-flight proxy memory: stash entries + blocks parked in retiring
  // buckets (the pipeline's working-set bound).
  size_t InflightBlocks() const;

  // Drop superseded bucket versions on the server. The proxy calls this only
  // after the epoch's checkpoint is durable (recovery may still need the old
  // versions before that).
  Status TruncateStaleVersions();

  // --- durability interface (§8) ---
  // Called with each read batch's plan before any of its physical reads are
  // issued (requires parallel + defer_writes). A failing status aborts the
  // batch.
  void SetBatchPlannedHook(std::function<Status(const BatchPlan&)> hook);

  // State accessors for checkpointing; call only between batches/epochs.
  PositionMap& position_map() { return position_map_; }
  const std::vector<BucketMeta>& bucket_metas() const { return meta_; }
  Stash& stash() { return stash_; }
  // Counter accessors take mu_ so a live metrics scrape can read them while
  // batches run (checkpointing still calls them between batches, where the
  // lock is uncontended).
  uint64_t access_count() const;
  uint64_t evict_count() const;
  EpochId epoch() const;
  void SetEpoch(EpochId e);

  // Buckets whose metadata changed since the last TakeDirtyBuckets call.
  std::vector<BucketIndex> TakeDirtyBuckets();

  // Rebuild in-memory state from recovered components (used by the recovery
  // manager instead of Initialize).
  Status RestoreState(PositionMap position_map, std::vector<BucketMeta> metas, Stash stash,
                      uint64_t access_count, uint64_t evict_count, EpochId epoch);

  RingOramStats stats() const;
  void ResetStats();
  TraceRecorder& trace() { return trace_; }

  // Test hooks: invariant checks (O(N + buckets)).
  Status CheckInvariants() const;

 private:
  struct BlockLoc {
    uint32_t bucket = kLocNone;  // kLocStash / kLocNone sentinels below
    uint32_t slot = 0;           // logical real slot when in a bucket
  };
  static constexpr uint32_t kLocStash = 0xFFFFFFFFu;
  static constexpr uint32_t kLocNone = 0xFFFFFFFEu;

  struct PlannedBlock {
    BlockId id;
    Leaf leaf;
    Bytes value;
  };
  struct BufferedBucket {
    bool fully_read = false;      // all future reads served from the proxy buffer
    bool rewrite_planned = false; // FlushPath/FlushBucket assigned new contents
    std::vector<PlannedBlock> blocks;
  };
  enum class DeferredOpType { kEvictPath, kReshuffle };
  struct DeferredOp {
    DeferredOpType type;
    Leaf leaf = kInvalidLeaf;
    BucketIndex bucket = 0;
  };

  // A physical slot read planned but not yet executed. `entry` is the
  // (node-stable) stash entry to deposit the decrypted value into, captured
  // at planning time; nullptr for dummy-slot reads. Reads belonging to one
  // logical access's path share a path_group and may be fetched as a single
  // XOR path read; kNoPathGroup reads (eviction/reshuffle bucket pulls) are
  // always fetched slot by slot.
  static constexpr uint32_t kNoPathGroup = 0xFFFFFFFFu;
  struct PendingRead {
    BucketIndex bucket = 0;
    uint32_t version = 0;
    SlotIndex slot = 0;
    BlockId deposit_id = kInvalidBlockId;
    StashEntry* entry = nullptr;
    std::vector<Bytes>* results = nullptr;
    size_t result_slot = 0;
    uint32_t entry_gen = 0;
    uint32_t path_group = kNoPathGroup;
    // Early-answer callback for the batch this read answers (target reads
    // only). Points at the caller's frame; valid because every deposit
    // happens-before RunReadBatch returns.
    const EarlyResultFn* early = nullptr;
  };

  // --- planning (all under mu_) ---
  Status PlanAccess(BlockId id, std::optional<Leaf> forced_leaf, BatchPlan& plan,
                    std::vector<Bytes>* results, size_t result_slot);
  void EmitRead(BucketIndex bucket, SlotIndex phys_slot, BlockId deposit_id, StashEntry* entry,
                std::vector<Bytes>* results, size_t result_slot, uint32_t entry_gen,
                uint32_t path_group = kNoPathGroup);
  void BumpAccessCounter();
  void ScheduleEviction();
  void ScheduleReshuffle(BucketIndex bucket);
  // Shared read phase of evictions/reshuffles for one bucket: move all valid
  // real blocks into the stash and pad with dummy reads up to Z total.
  void BucketReadPhase(BucketIndex bucket);
  // If `bucket` is retiring, move its buffered blocks into the stash (no
  // physical reads — the in-flight version has never been read) and drop it
  // from the retiring set. Returns true if the bucket was retiring.
  bool AbsorbRetiringBucket(BucketIndex bucket);

  // --- flushing ---
  void FlushPath(Leaf leaf);
  void FlushBucket(BucketIndex bucket);
  void PullPlannedBlocks(BucketIndex bucket);
  // Assign up to Z stash blocks to `bucket` (deepest-first is achieved by the
  // caller's level order); records placement or materializes immediately.
  void PlaceAndRewrite(BucketIndex bucket, std::vector<PlannedBlock> blocks);
  void MaterializeBucket(BucketIndex bucket, const std::vector<PlannedBlock>& blocks,
                         bool via_pool);
  std::vector<PlannedBlock> SelectStashBlocksFor(BucketIndex bucket, Leaf target_leaf,
                                                 uint32_t level);

  // --- physical IO ---
  // Fetch + decode one read on the calling thread (sequential/eager modes).
  void ExecuteReadNow(const PendingRead& read);
  // Decrypt, verify, and deposit one fetched ciphertext.
  void ProcessCiphertext(const PendingRead& read, StatusOr<Bytes> ciphertext);
  // Decode a recovered plaintext, verify its id, and deposit it into the
  // stash entry / batch results registered at planning time.
  void DepositPlaintext(const PendingRead& read, const Bytes& plaintext);
  // Decrypt+deposit one dispatched chunk's results and retire its
  // outstanding-read slot (runs on the I/O pool).
  void ProcessReadGroup(const std::vector<PendingRead>& group,
                        std::vector<StatusOr<Bytes>> ciphertexts);
  // True when per-access path reads go over the XOR read path (see
  // RingOramOptions::xor_path_reads). Requires the config and encryptor to
  // agree on authenticated mode: the reconstruction derives both the
  // trailer layout and the verification AAD from it, and a mismatched pair
  // (which the slot-by-slot path happens to tolerate) would reject every
  // reply.
  bool UseXorPathReads() const {
    return options_.xor_path_reads && options_.parallel && options_.defer_writes &&
           options_.verify_decoded_ids &&
           encryptor_->authenticated() == config_.authenticated;
  }
  // Reconstruct one XOR path read: verify every slot tag (authenticated
  // mode), regenerate and XOR out the dummy bodies, and decrypt + deposit
  // the surviving target ciphertext (or check the all-dummy residue is
  // zero). Runs on the I/O pool.
  void ProcessPathXorGroup(const std::vector<PendingRead>& path,
                           StatusOr<PathXorResult> result);
  // One dispatched XOR chunk: reconstruct every path, then retire the
  // chunk's outstanding-read slot.
  void ProcessXorChunk(const std::vector<std::vector<PendingRead>>& paths,
                       std::vector<StatusOr<PathXorResult>> results);
  void DispatchPendingReads();
  // Dispatch halves of DispatchPendingReads: eviction/reshuffle slot reads
  // via batched slot RPCs, path groups via XOR path reads.
  void DispatchPlainReads(std::vector<PendingRead> reads);
  void DispatchXorReads(std::vector<std::vector<PendingRead>> groups);
  void WaitOutstandingReads();
  // Issue all buffered bucket images as one batched storage write.
  void FlushPendingImages();
  // Everything needed to materialize one retiring bucket without touching
  // meta_ (so the retirement stage can encrypt lock-free).
  struct RetireImagePlan {
    BucketIndex bucket = 0;
    uint32_t version = 0;
    std::vector<SlotIndex> perm;
    std::vector<PlannedBlock> blocks;  // logical slots [0, blocks.size())
  };
  // Shared by MaterializeBucket and the retirement stage: encrypt every slot
  // of one bucket image (blocks occupy the dense logical prefix; the rest
  // are dummies).
  std::vector<Bytes> EncryptBucketSlots(BucketIndex bucket, uint32_t version,
                                        const std::vector<SlotIndex>& perm,
                                        const std::vector<PlannedBlock>& blocks);
  BucketImage EncryptRetireImage(const RetireImagePlan& plan);
  struct RetireTicket;  // defined with the retirement state below
  // Submit encrypted images without waiting; completions land on
  // RetireChunkDone against the generation's ticket.
  void SubmitImagesAsync(std::vector<BucketImage> images,
                         std::shared_ptr<RetireTicket> ticket);
  void RetireChunkDone(const std::shared_ptr<RetireTicket>& ticket, Status st);
  void RecordError(const Status& status);
  StatusOr<std::vector<Bytes>> RunReadBatch(const std::vector<BlockId>& ids,
                                            const BatchPlan* replay_plan,
                                            const EarlyResultFn* early);
  Status WriteBatchInternal(const std::vector<std::pair<BlockId, Bytes>>& writes,
                            size_t padded_size, bool bump_schedule);
  // Copy stash values into batch result slots registered for blocks whose
  // physical read was still in flight at planning time. Must run after a
  // read barrier and before any flush can move those blocks out of the stash.
  void ResolveLazyResults();

  Leaf RandomLeaf() { return static_cast<Leaf>(rng_.Uniform(config_.num_leaves())); }

  RingOramConfig config_;
  RingOramOptions options_;
  std::shared_ptr<BucketStore> store_;
  std::shared_ptr<Encryptor> encryptor_;
  BlockCodec codec_;
  Csprng rng_;
  // I/O pool: sized for latency hiding (threads mostly sleep in the storage
  // layer). Crypto pool: sized to the hardware for the CPU-bound
  // encrypt-and-write phase — oversubscribing it hurts badly.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool> crypto_pool_;

  mutable std::mutex mu_;  // guards all metadata below
  PositionMap position_map_;
  std::vector<BucketMeta> meta_;
  Stash stash_;
  std::vector<BlockLoc> loc_;
  uint64_t access_count_ = 0;
  uint64_t evict_count_ = 0;
  EpochId epoch_ = 0;
  uint32_t batch_in_epoch_ = 0;

  // Epoch-local state (parallel + deferred mode).
  std::unordered_map<BucketIndex, BufferedBucket> buffered_;
  // Rewritten buckets of earlier epochs whose images are still in flight:
  // plaintext contents kept to serve this epoch's accesses (see file
  // comment). Entries whose blocks have since moved (loc_ no longer points
  // at the bucket) are stale and skipped at absorb time. Each entry is
  // owned by one retiring generation (`gen`); a bucket re-rewritten in a
  // later epoch is re-owned by the newer generation.
  struct RetiringBucket {
    uint64_t gen = 0;
    std::vector<PlannedBlock> blocks;
  };
  std::unordered_map<BucketIndex, RetiringBucket> retiring_;
  // FIFO of in-flight epoch retirements (at most options_.retire_depth).
  // version_floors[b] is bucket b's write count at that epoch's close — the
  // exact version its checkpoint references, and therefore the truncation
  // floor once that checkpoint is durable. Snapshotting the floors here
  // (instead of reading live counts at truncate time) keeps depth-D
  // truncation from deleting versions a still-undurable later epoch bumped
  // past.
  struct RetiringGeneration {
    uint64_t gen = 0;
    std::vector<BucketIndex> buckets;
    std::vector<uint32_t> version_floors;
  };
  std::deque<RetiringGeneration> retiring_gens_;
  uint64_t next_retire_gen_ = 1;
  // Floors banked by the most recent CollectRetired, consumed by the next
  // TruncateStaleVersions call.
  std::optional<std::vector<uint32_t>> collected_floors_;
  std::vector<DeferredOp> deferred_ops_;
  std::vector<PendingRead> pending_reads_;
  // Early-answer callback of the batch currently planning (live only within
  // RunReadBatch, under mu_); EmitRead attaches it to target reads.
  const EarlyResultFn* current_early_ = nullptr;
  uint32_t next_path_group_ = 0;  // reset each dispatch; groups never span one
  std::unordered_set<BucketIndex> dirty_buckets_;

  struct LazyResult {
    BlockId id;
    std::vector<Bytes>* results;
    size_t slot;
  };
  std::vector<LazyResult> lazy_results_;

  std::function<Status(const BatchPlan&)> planned_hook_;
  TraceRecorder trace_;

  // Cross-thread read completion tracking.
  std::mutex io_mu_;
  std::condition_variable io_cv_;
  size_t outstanding_reads_ = 0;
  std::mutex deposit_mu_;   // guards stash value deposits
  std::mutex crypto_mu_;    // serializes crypto when !parallel_crypto
  std::mutex images_mu_;    // guards the buffered bucket images below
  std::vector<BucketImage> pending_images_;
  std::mutex err_mu_;
  Status first_error_;

  // Retirement completion tracking (never held together with mu_ by the
  // waiter side; completions only touch these, so AwaitRetireDurable cannot
  // deadlock against a next-epoch batch that holds mu_). One ticket per
  // in-flight generation, FIFO-aligned with retiring_gens_; the global
  // outstanding count feeds the destructor's drain.
  struct RetireTicket {
    size_t outstanding = 0;
    Status error;
  };
  mutable std::mutex retire_mu_;
  std::condition_variable retire_cv_;
  std::deque<std::shared_ptr<RetireTicket>> retire_tickets_;
  size_t retire_outstanding_ = 0;
  // Encrypt time spent on the retirement stage (folded into materialize_us
  // by stats(); atomic because it is recorded outside mu_).
  std::atomic<uint64_t> bg_materialize_us_{0};
  // Early answers delivered from I/O threads (folded into stats() like
  // bg_materialize_us_; atomic because deposits run outside mu_).
  std::atomic<uint64_t> early_results_{0};

  RingOramStats stats_;  // updated under mu_ at planning time
};

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_RING_ORAM_H_
