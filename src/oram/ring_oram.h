// Ring ORAM with Obladi's epoch-parallel executor (§4, §6.3, §7).
//
// One class supports three execution modes, selected by RingOramOptions:
//
//  * Sequential     (parallel=false): canonical Ring ORAM. Every physical read
//    and every eviction/reshuffle write executes synchronously, one at a time.
//    This is the "Sequential" series of Figure 10a.
//
//  * Parallel, immediate writes (parallel=true, defer_writes=false): physical
//    reads of a batch run concurrently on an I/O pool, but each evict-path /
//    early-reshuffle still performs its write phase at its trigger point,
//    which forces a barrier (all in-flight reads must land before the stash
//    can be flushed — the timing-channel argument of §7). This is the
//    "Normal" series of Figure 10d.
//
//  * Parallel, deferred writes (both true): Obladi's design. Within an epoch
//    only reads touch the server; eviction and reshuffle *read phases* run at
//    their scheduled points, while all write phases are planned and flushed
//    at FinishEpoch with per-bucket deduplication (a bucket rewritten k times
//    in an epoch is physically written once, at its k-th version). Buckets
//    already consumed by an eviction are served from the proxy buffer for the
//    rest of the epoch (Lemma 2's "read exactly once").
//
// Security-relevant behaviours implemented here:
//  * every access remaps its block to a fresh uniform leaf (path invariant);
//  * no physical slot is read twice between bucket writes (bucket invariant);
//  * dummy requests (id == kInvalidBlockId) read a full random path;
//  * writes are "dummiless" (§6.3): they update the stash directly and only
//    advance the eviction schedule;
//  * blocks resident in the stash still trigger full dummy path reads, unless
//    the insecure cache_all_stash ablation is enabled (used by tests to
//    demonstrate the §6.3 skew).
#ifndef OBLADI_SRC_ORAM_RING_ORAM_H_
#define OBLADI_SRC_ORAM_RING_ORAM_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/crypto/csprng.h"
#include "src/crypto/encryptor.h"
#include "src/oram/block_codec.h"
#include "src/oram/bucket_meta.h"
#include "src/oram/config.h"
#include "src/oram/position_map.h"
#include "src/oram/stash.h"
#include "src/oram/trace.h"
#include "src/storage/bucket_store.h"

namespace obladi {

struct RingOramOptions {
  bool parallel = true;
  bool defer_writes = true;      // delayed visibility (§7); requires parallel
  bool parallel_crypto = true;   // decrypt/encrypt on pool workers vs. one at a time
  bool cache_all_stash = false;  // INSECURE ablation for the §6.3 skew demonstration
  bool verify_decoded_ids = true;  // disable when running on DummyBucketStore
  bool enable_trace = false;       // record the adversary-visible physical trace
  size_t io_threads = 32;
};

struct RingOramStats {
  uint64_t logical_accesses = 0;
  uint64_t physical_slot_reads = 0;
  uint64_t physical_bucket_writes = 0;
  uint64_t planned_bucket_rewrites = 0;  // pre-dedup rewrite count
  uint64_t evictions = 0;
  uint64_t early_reshuffles = 0;
  uint64_t buffered_bucket_skips = 0;  // path levels served from the epoch buffer
  uint64_t stash_cache_skips = 0;      // accesses skipped by cache_all_stash (ablation)
  uint64_t flush_plan_us = 0;          // FinishEpoch: planning deferred write phases
  uint64_t materialize_us = 0;         // FinishEpoch: encrypt + write buckets
  uint64_t write_drain_us = 0;         // FinishEpoch: waiting on handed-off writes
};

class RingOram {
 public:
  RingOram(RingOramConfig config, RingOramOptions options, std::shared_ptr<BucketStore> store,
           std::shared_ptr<Encryptor> encryptor, uint64_t seed);
  ~RingOram();

  RingOram(const RingOram&) = delete;
  RingOram& operator=(const RingOram&) = delete;

  const RingOramConfig& config() const { return config_; }
  const RingOramOptions& options() const { return options_; }

  // Bulk-load initial block values; values[i] is the payload of BlockId i.
  // Buckets are packed bottom-up and written at version 0.
  Status Initialize(const std::vector<Bytes>& values);

  // Execute a batch of logical reads. Entries equal to kInvalidBlockId are
  // padding requests (a full random-path dummy read). Returns payloads
  // aligned with ids (empty for padding). Blocks until all values arrived.
  StatusOr<std::vector<Bytes>> ReadBatch(const std::vector<BlockId>& ids);

  // Recovery replay (§8): re-executes a logged batch. Padding requests reuse
  // the logged leaves; real requests must match the restored position map.
  StatusOr<std::vector<Bytes>> ReplayReadBatch(const BatchPlan& plan);

  // Dummiless buffered writes. The batch is padded (by counter bumps) to
  // padded_size so the eviction schedule is workload independent.
  Status WriteBatch(const std::vector<std::pair<BlockId, Bytes>>& writes, size_t padded_size);

  // Flush deferred eviction/reshuffle write phases and all buffered bucket
  // writes (deduplicated); advances to the next epoch.
  Status FinishEpoch();

  // Drop superseded bucket versions on the server. The proxy calls this only
  // after the epoch's checkpoint is durable (recovery may still need the old
  // versions before that).
  Status TruncateStaleVersions();

  // --- durability interface (§8) ---
  // Called with each read batch's plan before any of its physical reads are
  // issued (requires parallel + defer_writes). A failing status aborts the
  // batch.
  void SetBatchPlannedHook(std::function<Status(const BatchPlan&)> hook);

  // State accessors for checkpointing; call only between batches/epochs.
  PositionMap& position_map() { return position_map_; }
  const std::vector<BucketMeta>& bucket_metas() const { return meta_; }
  Stash& stash() { return stash_; }
  uint64_t access_count() const { return access_count_; }
  uint64_t evict_count() const { return evict_count_; }
  EpochId epoch() const { return epoch_; }
  void SetEpoch(EpochId e) { epoch_ = e; }

  // Buckets whose metadata changed since the last TakeDirtyBuckets call.
  std::vector<BucketIndex> TakeDirtyBuckets();

  // Rebuild in-memory state from recovered components (used by the recovery
  // manager instead of Initialize).
  Status RestoreState(PositionMap position_map, std::vector<BucketMeta> metas, Stash stash,
                      uint64_t access_count, uint64_t evict_count, EpochId epoch);

  RingOramStats stats() const;
  void ResetStats();
  TraceRecorder& trace() { return trace_; }

  // Test hooks: invariant checks (O(N + buckets)).
  Status CheckInvariants() const;

 private:
  struct BlockLoc {
    uint32_t bucket = kLocNone;  // kLocStash / kLocNone sentinels below
    uint32_t slot = 0;           // logical real slot when in a bucket
  };
  static constexpr uint32_t kLocStash = 0xFFFFFFFFu;
  static constexpr uint32_t kLocNone = 0xFFFFFFFEu;

  struct PlannedBlock {
    BlockId id;
    Leaf leaf;
    Bytes value;
  };
  struct BufferedBucket {
    bool fully_read = false;      // all future reads served from the proxy buffer
    bool rewrite_planned = false; // FlushPath/FlushBucket assigned new contents
    std::vector<PlannedBlock> blocks;
  };
  enum class DeferredOpType { kEvictPath, kReshuffle };
  struct DeferredOp {
    DeferredOpType type;
    Leaf leaf = kInvalidLeaf;
    BucketIndex bucket = 0;
  };

  // A physical slot read planned but not yet executed. `entry` is the
  // (node-stable) stash entry to deposit the decrypted value into, captured
  // at planning time; nullptr for dummy-slot reads.
  struct PendingRead {
    BucketIndex bucket = 0;
    uint32_t version = 0;
    SlotIndex slot = 0;
    BlockId deposit_id = kInvalidBlockId;
    StashEntry* entry = nullptr;
    std::vector<Bytes>* results = nullptr;
    size_t result_slot = 0;
    uint32_t entry_gen = 0;
  };

  // --- planning (all under mu_) ---
  Status PlanAccess(BlockId id, std::optional<Leaf> forced_leaf, BatchPlan& plan,
                    std::vector<Bytes>* results, size_t result_slot);
  void EmitRead(BucketIndex bucket, SlotIndex phys_slot, BlockId deposit_id, StashEntry* entry,
                std::vector<Bytes>* results, size_t result_slot, uint32_t entry_gen);
  void BumpAccessCounter();
  void ScheduleEviction();
  void ScheduleReshuffle(BucketIndex bucket);
  // Shared read phase of evictions/reshuffles for one bucket: move all valid
  // real blocks into the stash and pad with dummy reads up to Z total.
  void BucketReadPhase(BucketIndex bucket);

  // --- flushing ---
  void FlushPath(Leaf leaf);
  void FlushBucket(BucketIndex bucket);
  void PullPlannedBlocks(BucketIndex bucket);
  // Assign up to Z stash blocks to `bucket` (deepest-first is achieved by the
  // caller's level order); records placement or materializes immediately.
  void PlaceAndRewrite(BucketIndex bucket, std::vector<PlannedBlock> blocks);
  void MaterializeBucket(BucketIndex bucket, const std::vector<PlannedBlock>& blocks,
                         bool via_pool);
  std::vector<PlannedBlock> SelectStashBlocksFor(BucketIndex bucket, Leaf target_leaf,
                                                 uint32_t level);

  // --- physical IO ---
  // Fetch + decode one read on the calling thread (sequential/eager modes).
  void ExecuteReadNow(const PendingRead& read);
  // Decrypt, verify, and deposit one fetched ciphertext.
  void ProcessCiphertext(const PendingRead& read, StatusOr<Bytes> ciphertext);
  // Decrypt+deposit one dispatched chunk's results and retire its
  // outstanding-read slot (runs on the I/O pool).
  void ProcessReadGroup(const std::vector<PendingRead>& group,
                        std::vector<StatusOr<Bytes>> ciphertexts);
  void DispatchPendingReads();
  void WaitOutstandingReads();
  // Issue all buffered bucket images as one batched storage write.
  void FlushPendingImages();
  void RecordError(const Status& status);
  StatusOr<std::vector<Bytes>> RunReadBatch(const std::vector<BlockId>& ids,
                                            const BatchPlan* replay_plan);
  // Copy stash values into batch result slots registered for blocks whose
  // physical read was still in flight at planning time. Must run after a
  // read barrier and before any flush can move those blocks out of the stash.
  void ResolveLazyResults();

  Leaf RandomLeaf() { return static_cast<Leaf>(rng_.Uniform(config_.num_leaves())); }

  RingOramConfig config_;
  RingOramOptions options_;
  std::shared_ptr<BucketStore> store_;
  std::shared_ptr<Encryptor> encryptor_;
  BlockCodec codec_;
  Csprng rng_;
  // I/O pool: sized for latency hiding (threads mostly sleep in the storage
  // layer). Crypto pool: sized to the hardware for the CPU-bound
  // encrypt-and-write phase — oversubscribing it hurts badly.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool> crypto_pool_;

  mutable std::mutex mu_;  // guards all metadata below
  PositionMap position_map_;
  std::vector<BucketMeta> meta_;
  Stash stash_;
  std::vector<BlockLoc> loc_;
  uint64_t access_count_ = 0;
  uint64_t evict_count_ = 0;
  EpochId epoch_ = 0;
  uint32_t batch_in_epoch_ = 0;

  // Epoch-local state (parallel + deferred mode).
  std::unordered_map<BucketIndex, BufferedBucket> buffered_;
  std::vector<DeferredOp> deferred_ops_;
  std::vector<PendingRead> pending_reads_;
  std::unordered_set<BucketIndex> dirty_buckets_;
  uint32_t committed_version_floor_ = 0;  // min version still needed (for truncation)

  struct LazyResult {
    BlockId id;
    std::vector<Bytes>* results;
    size_t slot;
  };
  std::vector<LazyResult> lazy_results_;

  std::function<Status(const BatchPlan&)> planned_hook_;
  TraceRecorder trace_;

  // Cross-thread read completion tracking.
  std::mutex io_mu_;
  std::condition_variable io_cv_;
  size_t outstanding_reads_ = 0;
  std::mutex deposit_mu_;   // guards stash value deposits
  std::mutex crypto_mu_;    // serializes crypto when !parallel_crypto
  std::mutex images_mu_;    // guards the buffered bucket images below
  std::vector<BucketImage> pending_images_;
  std::mutex err_mu_;
  Status first_error_;

  RingOramStats stats_;  // updated under mu_ at planning time
};

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_RING_ORAM_H_
