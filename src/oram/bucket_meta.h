// Client-side per-bucket metadata (the "permutation map" of §4/§8).
//
// Each bucket has Z logical real slots and S logical dummy slots; `perm` maps
// logical slot -> physical slot and is re-drawn uniformly at every bucket
// write, which is what makes physical slot choices unlinkable across writes
// (the bucket invariant). `valid` tracks which physical slots have been read
// since the last write; Ring ORAM never reads a physical slot twice between
// writes.
#ifndef OBLADI_SRC_ORAM_BUCKET_META_H_
#define OBLADI_SRC_ORAM_BUCKET_META_H_

#include <cstdint>
#include <vector>

#include "src/common/serde.h"
#include "src/common/types.h"

namespace obladi {

struct BucketMeta {
  // Logical slots [0, z) are real, [z, z+s) are dummies.
  std::vector<SlotIndex> perm;     // logical -> physical
  std::vector<uint8_t> valid;      // per physical slot; 1 = unread since write
  std::vector<BlockId> real_ids;   // per logical real slot; kInvalidBlockId = empty
  std::vector<Leaf> real_leaves;   // leaf of the block in each logical real slot
  uint32_t reads_since_write = 0;  // physical reads since last write (early-reshuffle trigger)
  uint32_t dummies_used = 0;       // logical dummy slots consumed since last write
  uint32_t write_count = 0;        // server-side version of the last write

  void Init(uint32_t z, uint32_t s) {
    perm.assign(z + s, 0);
    for (uint32_t i = 0; i < z + s; ++i) {
      perm[i] = i;
    }
    valid.assign(z + s, 1);
    real_ids.assign(z, kInvalidBlockId);
    real_leaves.assign(z, kInvalidLeaf);
    reads_since_write = 0;
    dummies_used = 0;
    write_count = 0;
  }

  uint32_t z() const { return static_cast<uint32_t>(real_ids.size()); }
  uint32_t num_slots() const { return static_cast<uint32_t>(perm.size()); }

  void Serialize(BinaryWriter& w) const {
    w.PutU32(static_cast<uint32_t>(real_ids.size()));
    w.PutU32(num_slots() - static_cast<uint32_t>(real_ids.size()));
    for (SlotIndex p : perm) {
      w.PutU16(static_cast<uint16_t>(p));
    }
    for (uint8_t v : valid) {
      w.PutU8(v);
    }
    for (BlockId id : real_ids) {
      w.PutU64(id);
    }
    for (Leaf l : real_leaves) {
      w.PutU32(l);
    }
    w.PutU32(reads_since_write);
    w.PutU32(dummies_used);
    w.PutU32(write_count);
  }

  static BucketMeta Deserialize(BinaryReader& r) {
    BucketMeta m;
    uint32_t z = r.GetU32();
    uint32_t s = r.GetU32();
    m.perm.resize(z + s);
    for (auto& p : m.perm) {
      p = r.GetU16();
    }
    m.valid.resize(z + s);
    for (auto& v : m.valid) {
      v = r.GetU8();
    }
    m.real_ids.resize(z);
    for (auto& id : m.real_ids) {
      id = r.GetU64();
    }
    m.real_leaves.resize(z);
    for (auto& l : m.real_leaves) {
      l = r.GetU32();
    }
    m.reads_since_write = r.GetU32();
    m.dummies_used = r.GetU32();
    m.write_count = r.GetU32();
    return m;
  }
};

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_BUCKET_META_H_
