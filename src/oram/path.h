// Tree geometry helpers for the heap-ordered ORAM tree.
//
// Buckets are numbered heap-style: root = 0, children of i are 2i+1 / 2i+2.
// A leaf l in [0, 2^(L-1)) names the path root → leaf; the bucket at level
// `level` (root = level 0) on that path has in-level index (l >> (L-1-level)).
#ifndef OBLADI_SRC_ORAM_PATH_H_
#define OBLADI_SRC_ORAM_PATH_H_

#include <cstdint>

#include "src/common/types.h"

namespace obladi {

// Bucket index at `level` on the path to `leaf` in a tree with `num_levels`.
inline BucketIndex PathBucket(Leaf leaf, uint32_t level, uint32_t num_levels) {
  uint32_t in_level = leaf >> (num_levels - 1 - level);
  return ((1u << level) - 1) + in_level;
}

inline uint32_t LevelOfBucket(BucketIndex bucket) {
  uint32_t level = 0;
  while ((1u << (level + 1)) - 1 <= bucket) {
    ++level;
  }
  return level;
}

// Does the path to `leaf` pass through `bucket`?
inline bool PathContains(Leaf leaf, BucketIndex bucket, uint32_t num_levels) {
  uint32_t level = LevelOfBucket(bucket);
  return PathBucket(leaf, level, num_levels) == bucket;
}

// Length of the common prefix (in levels) of the paths to leaves a and b;
// i.e. the deepest level whose bucket both paths share, plus one. Result is
// in [1, num_levels] (paths always share the root).
inline uint32_t CommonPathLevels(Leaf a, Leaf b, uint32_t num_levels) {
  uint32_t shared = 1;  // root
  for (uint32_t level = 1; level < num_levels; ++level) {
    if ((a >> (num_levels - 1 - level)) != (b >> (num_levels - 1 - level))) {
      break;
    }
    ++shared;
  }
  return shared;
}

// Reverse-lexicographic eviction order (Ring ORAM): the g-th eviction targets
// leaf bit_reverse(g mod 2^(L-1)). This spreads consecutive evictions across
// the tree deterministically.
inline Leaf EvictionLeaf(uint64_t evict_counter, uint32_t num_levels) {
  uint32_t bits = num_levels - 1;
  uint32_t g = static_cast<uint32_t>(evict_counter & ((1u << bits) - 1));
  uint32_t reversed = 0;
  for (uint32_t i = 0; i < bits; ++i) {
    reversed = (reversed << 1) | ((g >> i) & 1);
  }
  return reversed;
}

// Number of evictions among the first `evict_count` that touched `bucket`.
// Used by tests to validate the shadow-paging version determinism argument.
inline uint64_t EvictionTouchCount(uint64_t evict_count, BucketIndex bucket,
                                   [[maybe_unused]] uint32_t num_levels) {
  uint32_t level = LevelOfBucket(bucket);
  if (level == 0) {
    return evict_count;  // every eviction passes through the root
  }
  uint32_t in_level = bucket - ((1u << level) - 1);
  // Eviction e touches this bucket iff the low `level` bits of e, reversed,
  // equal in_level (see EvictionLeaf).
  uint32_t r = 0;
  for (uint32_t i = 0; i < level; ++i) {
    r = (r << 1) | ((in_level >> i) & 1);
  }
  uint64_t period = 1u << level;
  if (evict_count == 0) {
    return 0;
  }
  if (evict_count <= r) {
    return 0;
  }
  return (evict_count - r - 1) / period + 1;
}

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_PATH_H_
