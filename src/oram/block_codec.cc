#include "src/oram/block_codec.h"

#include <cstring>

#include "src/common/serde.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/sha256.h"

namespace obladi {

BlockCodec::BlockCodec(const RingOramConfig& config, Bytes dummy_seed_key)
    : payload_size_(config.block_payload_size),
      plaintext_size_(config.slot_plaintext_size()) {
  Sha256::Digest d = Sha256::Hash(dummy_seed_key);
  dummy_key_.assign(d.begin(), d.end());
}

Bytes BlockCodec::EncodeBlock(BlockId id, Leaf leaf, const Bytes& payload) const {
  Bytes out(plaintext_size_, 0);
  BinaryWriter header;
  header.PutU64(id);
  header.PutU32(leaf);
  std::memcpy(out.data(), header.bytes().data(), header.size());
  size_t n = payload.size() < payload_size_ ? payload.size() : payload_size_;
  std::memcpy(out.data() + 12, payload.data(), n);
  return out;
}

DecodedBlock BlockCodec::DecodeBlock(const Bytes& plaintext) const {
  DecodedBlock out;
  if (plaintext.size() < 12) {
    return out;
  }
  BinaryReader reader(plaintext.data(), 12);
  out.id = reader.GetU64();
  out.leaf = reader.GetU32();
  out.payload.assign(plaintext.begin() + 12, plaintext.end());
  return out;
}

Bytes BlockCodec::DummyPlaintext(BucketIndex bucket, uint32_t version, SlotIndex slot) const {
  Bytes out(plaintext_size_);
  uint8_t nonce[ChaCha20::kNonceSize];
  BinaryWriter w;
  w.PutU32(bucket);
  w.PutU32(version);
  w.PutU32(slot);
  std::memcpy(nonce, w.bytes().data(), sizeof(nonce));
  ChaCha20 prf(dummy_key_.data(), nonce);
  prf.Keystream(out.data(), out.size());
  // Stamp the invalid id so decoded dummies are recognizable.
  BinaryWriter header;
  header.PutU64(kInvalidBlockId);
  header.PutU32(kInvalidLeaf);
  std::memcpy(out.data(), header.bytes().data(), header.size());
  return out;
}

Bytes BlockCodec::MakeAad(BucketIndex bucket, uint32_t version, SlotIndex slot) {
  BinaryWriter w;
  w.PutU32(bucket);
  w.PutU32(version);
  w.PutU32(slot);
  return w.Take();
}

}  // namespace obladi
