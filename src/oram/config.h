// Ring ORAM configuration and the analytic parameter model (§6.4, [Ren+15]).
//
// A Ring ORAM instance is parameterized by:
//   N (capacity)  – number of real blocks
//   Z             – real slots per bucket
//   S             – dummy slots per bucket
//   A             – evict-path frequency (one eviction per A accesses)
//   L (num_levels)– buckets per root→leaf path; the tree has 2^(L-1) leaves
//
// The tree is sized so that the eviction rate keeps the stash bounded:
// one block enters the stash per access and each eviction (every A accesses)
// can flush ~A blocks, requiring 2^(L-1) >= N / A. This rule reproduces the
// paper's Table 11b: (10K, Z=100) -> 7 levels, (100K) -> 11, (1M) -> 14.
#ifndef OBLADI_SRC_ORAM_CONFIG_H_
#define OBLADI_SRC_ORAM_CONFIG_H_

#include <cstdint>
#include <cstddef>

#include "src/common/status.h"
#include "src/common/types.h"

namespace obladi {

struct RingOramConfig {
  uint64_t capacity = 0;          // N
  uint32_t z = 4;                 // real slots per bucket
  uint32_t s = 5;                 // dummy slots per bucket
  uint32_t a = 3;                 // evict path every A accesses
  uint32_t num_levels = 0;        // L (root..leaf inclusive)
  size_t block_payload_size = 256;
  size_t max_stash_blocks = 0;    // checkpoint padding bound; 0 = derived
  bool authenticated = false;     // Appendix A MAC + freshness mode
  // Added to local bucket indices when computing authentication AADs. A
  // sharded deployment sets this to the shard's bucket-namespace offset so
  // each ciphertext authenticates its *global* location — otherwise two
  // shards sharing one key would MAC identical (bucket, version, slot)
  // tuples and the server could splice ciphertexts between shards.
  uint32_t aad_bucket_offset = 0;

  uint32_t num_leaves() const { return 1u << (num_levels - 1); }
  uint32_t num_buckets() const { return (1u << num_levels) - 1; }
  uint32_t slots_per_bucket() const { return z + s; }

  // Plaintext slot size: block header (id u64 + leaf u32) + payload.
  size_t slot_plaintext_size() const { return 12 + block_payload_size; }

  // Build a configuration for N blocks with bucket parameter Z, choosing
  // (S, A, L, stash bound) from the analytic model.
  static RingOramConfig ForCapacity(uint64_t n, uint32_t z, size_t payload_size);

  // (A, S) for a given Z, following the Ring ORAM analytic model: A ~ 1.68 Z,
  // S ~ 1.96 Z at large Z, with the published small-Z points.
  static void ParametersForZ(uint32_t z, uint32_t* a, uint32_t* s);

  Status Validate() const;
};

}  // namespace obladi

#endif  // OBLADI_SRC_ORAM_CONFIG_H_
