// Non-private remote key-value storage used by the baselines. Models the
// paper's NoPriv backend: plain (encrypted-at-rest, but access-pattern-
// revealing) storage behind the same latency profiles as the ORAM backends.
//
// Puts carry the writer's timestamp and apply last-writer-wins, so committed
// transactions can flush their write sets concurrently without serializing
// on storage round trips.
#ifndef OBLADI_SRC_BASELINE_REMOTE_KV_H_
#define OBLADI_SRC_BASELINE_REMOTE_KV_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/latency_store.h"

namespace obladi {

class RemoteKv {
 public:
  explicit RemoteKv(LatencyProfile profile) : profile_(std::move(profile)) {}

  StatusOr<std::string> Get(const std::string& key) {
    PreciseSleepMicros(profile_.read_latency_us);
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = data_.find(key);
    if (it == data_.end()) {
      return Status::NotFound("no such key");
    }
    return it->second.value;
  }

  Status Put(const std::string& key, std::string value, Timestamp version) {
    PreciseSleepMicros(profile_.write_latency_us);
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    auto& entry = data_[key];
    if (version >= entry.version) {
      entry.value = std::move(value);
      entry.version = version;
    }
    return Status::Ok();
  }

  // Bulk load without latency (setup path).
  void LoadDirect(const std::string& key, std::string value) {
    std::lock_guard<std::mutex> lk(mu_);
    data_[key] = Entry{std::move(value), 0};
  }

  const NetworkStats& stats() const { return stats_; }
  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return data_.size();
  }

 private:
  struct Entry {
    std::string value;
    Timestamp version = 0;
  };

  LatencyProfile profile_;
  NetworkStats stats_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> data_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_BASELINE_REMOTE_KV_H_
