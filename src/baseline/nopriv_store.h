// NoPriv baseline (§10): the same MVTSO concurrency control as Obladi, but a
// non-private data handler. No batching, no delayed commits: reads that miss
// the local version cache fetch synchronously from remote storage; writes
// buffer at the proxy and flush at commit; commit happens as soon as the
// transaction's dependencies are decided.
#ifndef OBLADI_SRC_BASELINE_NOPRIV_STORE_H_
#define OBLADI_SRC_BASELINE_NOPRIV_STORE_H_

#include <memory>

#include "src/baseline/remote_kv.h"
#include "src/txn/kv_interface.h"
#include "src/txn/mvtso.h"

namespace obladi {

class NoPrivStore : public TransactionalKv {
 public:
  explicit NoPrivStore(std::shared_ptr<RemoteKv> storage) : storage_(std::move(storage)) {}

  Status Load(const std::vector<std::pair<Key, std::string>>& records) {
    for (const auto& [key, value] : records) {
      storage_->LoadDirect(key, value);
    }
    return Status::Ok();
  }

  Timestamp Begin() override { return engine_.Begin(); }

  StatusOr<std::string> Read(Timestamp txn, const Key& key) override {
    for (;;) {
      ReadOutcome outcome = engine_.Read(txn, key);
      if (outcome.kind == ReadOutcome::kAborted) {
        return Status::Aborted("transaction aborted");
      }
      if (outcome.kind == ReadOutcome::kValue) {
        return outcome.value;
      }
      auto base = storage_->Get(key);
      if (!base.ok()) {
        return base.status();
      }
      engine_.InstallBase(key, std::move(*base));
    }
  }

  Status Write(Timestamp txn, const Key& key, std::string value) override {
    return engine_.Write(txn, key, std::move(value));
  }

  Status Commit(Timestamp txn) override {
    // Capture the write set before the record can be pruned.
    auto writes = engine_.WritesOf(txn);
    OBLADI_RETURN_IF_ERROR(engine_.TryCommitImmediate(txn));
    // Flush buffered writes; last-writer-wins versioning on the storage side
    // keeps concurrent flushes correct without extra ordering.
    for (auto& [key, value] : writes) {
      OBLADI_RETURN_IF_ERROR(storage_->Put(key, std::move(value), txn));
    }
    return Status::Ok();
  }

  void Abort(Timestamp txn) override { engine_.Abort(txn); }

  MvtsoStats txn_stats() const { return engine_.stats(); }

 private:
  std::shared_ptr<RemoteKv> storage_;
  MvtsoEngine engine_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_BASELINE_NOPRIV_STORE_H_
