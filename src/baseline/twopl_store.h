// Strict two-phase-locking baseline — the conventional-database reference
// point the paper labels "MySQL". Shared/exclusive locks are acquired at
// first access and held until commit/abort; deadlocks are broken with
// wait-die (older transactions wait, younger ones abort and retry), which
// matches the contention behaviour the paper attributes to exclusive locks
// held for the duration of a transaction.
#ifndef OBLADI_SRC_BASELINE_TWOPL_STORE_H_
#define OBLADI_SRC_BASELINE_TWOPL_STORE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/baseline/remote_kv.h"
#include "src/txn/kv_interface.h"

namespace obladi {

struct TwoPlStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborts_deadlock = 0;  // wait-die victim
};

class TwoPlStore : public TransactionalKv {
 public:
  explicit TwoPlStore(std::shared_ptr<RemoteKv> storage) : storage_(std::move(storage)) {}

  Status Load(const std::vector<std::pair<Key, std::string>>& records) {
    for (const auto& [key, value] : records) {
      storage_->LoadDirect(key, value);
    }
    return Status::Ok();
  }

  Timestamp Begin() override;
  StatusOr<std::string> Read(Timestamp txn, const Key& key) override;
  Status Write(Timestamp txn, const Key& key, std::string value) override;
  Status Commit(Timestamp txn) override;
  void Abort(Timestamp txn) override;

  TwoPlStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  enum class LockMode { kShared, kExclusive };

  struct LockEntry {
    std::unordered_set<Timestamp> shared_holders;
    Timestamp exclusive_holder = 0;  // 0 = none
  };
  struct TxnRec {
    bool active = true;
    std::unordered_set<Key> locks_held;
    std::unordered_map<Key, std::string> writes;  // buffered until commit
  };

  // Wait-die lock acquisition. Returns kAborted if this transaction must die.
  Status AcquireLocked(std::unique_lock<std::mutex>& lk, Timestamp ts, const Key& key,
                       LockMode mode);
  void ReleaseAllLocked(Timestamp ts, TxnRec& rec);

  std::shared_ptr<RemoteKv> storage_;
  mutable std::mutex mu_;
  std::condition_variable lock_cv_;
  std::atomic<Timestamp> next_ts_{1};
  // 2PL serializes by lock order, not begin-timestamp order, so storage
  // flushes are versioned by a commit sequence drawn while locks are held.
  std::atomic<Timestamp> commit_seq_{1};
  std::unordered_map<Key, LockEntry> locks_;
  std::unordered_map<Timestamp, TxnRec> txns_;
  TwoPlStats stats_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_BASELINE_TWOPL_STORE_H_
