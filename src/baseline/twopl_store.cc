#include "src/baseline/twopl_store.h"

namespace obladi {

Timestamp TwoPlStore::Begin() {
  Timestamp ts = next_ts_.fetch_add(1);
  std::lock_guard<std::mutex> lk(mu_);
  txns_[ts] = TxnRec{};
  stats_.begun++;
  return ts;
}

Status TwoPlStore::AcquireLocked(std::unique_lock<std::mutex>& lk, Timestamp ts, const Key& key,
                                 LockMode mode) {
  for (;;) {
    auto rec_it = txns_.find(ts);
    if (rec_it == txns_.end() || !rec_it->second.active) {
      return Status::Aborted("transaction not active");
    }
    LockEntry& entry = locks_[key];

    bool grantable;
    Timestamp blocker = 0;
    if (mode == LockMode::kShared) {
      grantable = entry.exclusive_holder == 0 || entry.exclusive_holder == ts;
      blocker = entry.exclusive_holder;
    } else {
      grantable = (entry.exclusive_holder == 0 || entry.exclusive_holder == ts) &&
                  (entry.shared_holders.empty() ||
                   (entry.shared_holders.size() == 1 && entry.shared_holders.count(ts) == 1));
      if (entry.exclusive_holder != 0 && entry.exclusive_holder != ts) {
        blocker = entry.exclusive_holder;
      } else {
        for (Timestamp h : entry.shared_holders) {
          if (h != ts) {
            blocker = std::max(blocker, h);
          }
        }
      }
    }

    if (grantable) {
      if (mode == LockMode::kShared) {
        entry.shared_holders.insert(ts);
      } else {
        entry.shared_holders.erase(ts);
        entry.exclusive_holder = ts;
      }
      rec_it->second.locks_held.insert(key);
      return Status::Ok();
    }

    // Wait-die: only wait for *younger* (larger-ts) holders if we are older;
    // otherwise die so the older transaction can make progress.
    if (ts > blocker && blocker != 0) {
      stats_.aborts_deadlock++;
      rec_it->second.active = false;
      ReleaseAllLocked(ts, rec_it->second);
      txns_.erase(rec_it);
      lock_cv_.notify_all();
      return Status::Aborted("wait-die victim");
    }
    lock_cv_.wait(lk);
  }
}

void TwoPlStore::ReleaseAllLocked(Timestamp ts, TxnRec& rec) {
  for (const Key& key : rec.locks_held) {
    auto it = locks_.find(key);
    if (it == locks_.end()) {
      continue;
    }
    it->second.shared_holders.erase(ts);
    if (it->second.exclusive_holder == ts) {
      it->second.exclusive_holder = 0;
    }
    if (it->second.shared_holders.empty() && it->second.exclusive_holder == 0) {
      locks_.erase(it);
    }
  }
  rec.locks_held.clear();
}

StatusOr<std::string> TwoPlStore::Read(Timestamp txn, const Key& key) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    OBLADI_RETURN_IF_ERROR(AcquireLocked(lk, txn, key, LockMode::kShared));
    // Read-your-own-writes from the buffer.
    auto rec_it = txns_.find(txn);
    auto w = rec_it->second.writes.find(key);
    if (w != rec_it->second.writes.end()) {
      return w->second;
    }
  }
  return storage_->Get(key);  // storage latency outside the lock table mutex
}

Status TwoPlStore::Write(Timestamp txn, const Key& key, std::string value) {
  std::unique_lock<std::mutex> lk(mu_);
  OBLADI_RETURN_IF_ERROR(AcquireLocked(lk, txn, key, LockMode::kExclusive));
  txns_[txn].writes[key] = std::move(value);
  return Status::Ok();
}

Status TwoPlStore::Commit(Timestamp txn) {
  std::unordered_map<Key, std::string> writes;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = txns_.find(txn);
    if (it == txns_.end() || !it->second.active) {
      return Status::Aborted("transaction not active");
    }
    writes = std::move(it->second.writes);
  }
  // Strict 2PL: flush while still holding every lock. The commit sequence
  // number reflects lock order, making last-writer-wins on storage correct.
  Timestamp commit_version = commit_seq_.fetch_add(1);
  for (auto& [key, value] : writes) {
    OBLADI_RETURN_IF_ERROR(storage_->Put(key, std::move(value), commit_version));
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::Aborted("transaction vanished during flush");
  }
  ReleaseAllLocked(txn, it->second);
  txns_.erase(it);
  stats_.committed++;
  lock_cv_.notify_all();
  return Status::Ok();
}

void TwoPlStore::Abort(Timestamp txn) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return;
  }
  ReleaseAllLocked(txn, it->second);
  txns_.erase(it);
  lock_cv_.notify_all();
}

}  // namespace obladi
