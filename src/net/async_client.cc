#include "src/net/async_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "src/common/clock.h"
#include "src/obs/trace.h"

namespace obladi {

// --- NetFuture --------------------------------------------------------------

NetFuture::NetFuture() : state_(std::make_shared<State>()) {}

const StatusOr<NetResponse>& NetFuture::Wait() const {
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [&] { return state_->done; });
  return state_->result;
}

StatusOr<NetResponse> NetFuture::Take() {
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [&] { return state_->done; });
  return std::move(state_->result);
}

bool NetFuture::Ready() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->done;
}

// --- CompletionQueue --------------------------------------------------------

void CompletionQueue::Push(uint64_t tag, StatusOr<NetResponse> result) {
  // Notify while holding the lock: a drainer may destroy this queue the
  // moment its predicate is satisfiable, so the notify must not touch cv_
  // after the drainer can wake.
  std::lock_guard<std::mutex> lk(mu_);
  Completion c;
  c.tag = tag;
  c.result = std::move(result);
  done_.push_back(std::move(c));
  cv_.notify_all();
}

CompletionQueue::Completion CompletionQueue::Next() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !done_.empty(); });
  Completion c = std::move(done_.front());
  done_.pop_front();
  return c;
}

std::vector<CompletionQueue::Completion> CompletionQueue::Drain(size_t n) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_.size() >= n; });
  std::vector<Completion> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(done_.front()));
    done_.pop_front();
  }
  return out;
}

size_t CompletionQueue::ready() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_.size();
}

// --- AsyncNetClient ---------------------------------------------------------

AsyncNetClient::AsyncNetClient(AsyncClientOptions options)
    : options_(std::move(options)), jitter_rng_(options_.retry.seed) {
  size_t n = options_.num_connections == 0 ? 1 : options_.num_connections;
  slots_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  // The bucket starts full so the first failures of a run may retry.
  retry_tokens_ = options_.retry.retry_budget_cap;
}

AsyncNetClient::~AsyncNetClient() {
  // Stopping the loop kills every connection, which routes through OnClose
  // and fails everything still pending — no waiter is left hanging.
  loop_.Stop();
}

Status AsyncNetClient::Start() {
  OBLADI_RETURN_IF_ERROR(loop_.Start());
  ArmHeartbeat();
  return Status::Ok();
}

StatusOr<std::shared_ptr<AsyncNetClient>> AsyncNetClient::Connect(AsyncClientOptions options) {
  auto client = std::make_shared<AsyncNetClient>(std::move(options));
  OBLADI_RETURN_IF_ERROR(client->Start());
  NetRequest ping;
  ping.type = MsgType::kPing;
  auto resp = client->Call(std::move(ping));
  if (!resp.ok()) {
    return resp.status();
  }
  Status st = resp->ToStatus();
  if (!st.ok()) {
    return st;
  }
  return client;
}

Status AsyncNetClient::EnsureConnectedLocked(size_t s, Slot& slot) {
  if (slot.conn_id != 0) {
    return Status::Ok();
  }
  auto sock = TcpSocket::Connect(options_.host, options_.port);
  if (!sock.ok()) {
    return sock.status();
  }
  uint64_t generation = ++slot.generation;
  EventLoop::ConnectionHandlers handlers;
  handlers.on_frame = [this, s, generation](Bytes payload) {
    OnFrame(s, generation, std::move(payload));
  };
  handlers.on_close = [this, s, generation](const Status& reason) {
    OnClose(s, generation, reason);
  };
  auto conn = loop_.AddConnection(std::move(*sock), std::move(handlers),
                                  options_.max_frame_bytes, options_.write_queue_cap);
  if (!conn.ok()) {
    return conn.status();
  }
  slot.conn_id = *conn;
  if (slot.ever_connected) {
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  }
  slot.ever_connected = true;
  return Status::Ok();
}

NetFuture AsyncNetClient::Submit(NetRequest req, uint64_t deadline_ms) {
  NetFuture fut;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Pending p;
  p.fut = fut.state_;
  p.deadline_ms = ResolveDeadline(deadline_ms);
  SubmitEncoded(req.type, req.id, EncodeRequest(req), std::move(p));
  return fut;
}

void AsyncNetClient::Submit(NetRequest req, CompletionQueue* cq, uint64_t tag,
                            uint64_t deadline_ms) {
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Pending p;
  p.cq = cq;
  p.tag = tag;
  p.deadline_ms = ResolveDeadline(deadline_ms);
  SubmitEncoded(req.type, req.id, EncodeRequest(req), std::move(p));
}

void AsyncNetClient::Submit(NetRequest req, ResponseCallback done, uint64_t deadline_ms) {
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Pending p;
  p.callback = std::move(done);
  p.deadline_ms = ResolveDeadline(deadline_ms);
  SubmitEncoded(req.type, req.id, EncodeRequest(req), std::move(p));
}

void AsyncNetClient::SubmitEncoded(MsgType type, uint64_t id, const Bytes& payload,
                                   Pending p, const size_t* force_slot, bool allow_block) {
  p.type = type;
  const uint64_t deadline_ms = p.deadline_ms;
  Tracer& tracer = Tracer::Get();
  uint64_t inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (tracer.enabled()) {
    // Submit->complete latency span, recorded at completion (rpc category,
    // named by message type).
    p.submit_ns = NowNanos();
    tracer.RecordCounter("net", "net.rpc_inflight", inflight);
  }
  size_t s = force_slot != nullptr
                 ? *force_slot
                 : next_slot_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
  Slot& slot = *slots_[s];

  // slot.mu serializes dialing and keeps the (conn_id, generation) pair
  // coherent for the pending entry; it is NOT held across the response.
  std::unique_lock<std::mutex> lk(slot.mu);
  if (p.heartbeat && slot.conn_id == 0) {
    // Heartbeats probe existing connections only — dialing would block the
    // event-loop thread they run on.
    lk.unlock();
    Complete(std::move(p), Status::Unavailable("heartbeat: slot not connected"));
    return;
  }
  Status st = p.heartbeat ? Status::Ok() : EnsureConnectedLocked(s, slot);
  if (!st.ok()) {
    lk.unlock();
    Complete(std::move(p), st);
    return;
  }
  p.slot = s;
  p.generation = slot.generation;
  const uint64_t generation = slot.generation;
  uint64_t conn_id = slot.conn_id;
  {
    // Register before sending: on a loopback the response can land before
    // SendFrame even returns.
    std::lock_guard<std::mutex> plk(pending_mu_);
    pending_.emplace(id, std::move(p));
  }
  // Drop slot.mu before touching the wire: SendFrame can block on
  // backpressure, and its fatal-send path runs KillConnection -> on_close
  // -> OnClose on THIS thread, which relocks slot.mu (self-deadlock if
  // still held). The pending entry is already registered, so the races
  // this opens are the ones the whoever-erases-completes protocol handles.
  lk.unlock();
  st = loop_.SendFrame(conn_id, payload, allow_block);
  if (st.ok()) {
    // Wire-layer accounting (frame + 4-byte length prefix), mirroring the
    // server's bytes_received counter for the same frame.
    stats_.bytes_sent.fetch_add(payload.size() + 4, std::memory_order_relaxed);
    if (deadline_ms > 0) {
      uint64_t tid = loop_.AddTimer(deadline_ms, [this, id] { OnDeadline(id); });
      if (tid != 0) {
        // Attach the timer to the pending entry so Complete can cancel it.
        // On a loopback the response may already have won the race; then
        // the entry is gone and the timer is cancelled straight away.
        bool attached = false;
        {
          std::lock_guard<std::mutex> plk(pending_mu_);
          auto it = pending_.find(id);
          if (it != pending_.end() && it->second.slot == s &&
              it->second.generation == generation) {
            it->second.deadline_timer = tid;
            attached = true;
          }
        }
        if (!attached) {
          loop_.CancelTimer(tid);
        }
      }
    }
  }
  if (!st.ok()) {
    // The connection died underneath us. OnClose may have raced us to the
    // pending entry; whoever erases it completes it.
    Pending mine;
    bool still_pending = false;
    {
      std::lock_guard<std::mutex> plk(pending_mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        mine = std::move(it->second);
        pending_.erase(it);
        still_pending = true;
      }
    }
    if (still_pending) {
      Complete(std::move(mine), st);
    }
  }
}

StatusOr<NetResponse> AsyncNetClient::Call(NetRequest req, uint64_t deadline_ms) {
  // Every request type is idempotent (reads, versioned bucket writes,
  // truncations, sync) EXCEPT kLogAppend / kLogAppendSync, which must stay
  // at-most-once — the server may have appended and died before answering,
  // and a duplicate WAL record would corrupt recovery.
  const bool retryable =
      req.type != MsgType::kLogAppend && req.type != MsgType::kLogAppendSync;
  const RetryPolicy& rp = options_.retry;
  {
    // Each Call deposits a fraction of a retry token; each retry spends a
    // whole one, so retries stay a bounded fraction of offered load.
    std::lock_guard<std::mutex> lk(policy_mu_);
    retry_tokens_ = std::min(rp.retry_budget_cap, retry_tokens_ + rp.retry_budget_ratio);
  }
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Bytes payload = EncodeRequest(req);
  const uint64_t resolved = ResolveDeadline(deadline_ms);
  const int max_attempts = retryable ? std::max(1, rp.max_attempts) : 1;
  StatusOr<NetResponse> result(Status::Internal("not attempted"));
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (!BreakerAllow()) {
      return Status::Unavailable("circuit breaker open: " + options_.host + ":" +
                                 std::to_string(options_.port));
    }
    NetFuture fut;
    {
      Pending p;
      p.fut = fut.state_;
      p.deadline_ms = resolved;
      // Reusing the encoded payload and id across attempts is safe: the
      // previous attempt's pending entry is gone before resubmission, so
      // the id cannot collide.
      SubmitEncoded(req.type, req.id, payload, std::move(p));
    }
    result = fut.Take();
    // A response carrying an application error is a transport SUCCESS —
    // the node is alive; retrying or tripping the breaker would be wrong.
    const bool transport_failure =
        !result.ok() && (result.status().code() == StatusCode::kUnavailable ||
                         result.status().code() == StatusCode::kDeadlineExceeded);
    BreakerRecord(!transport_failure);
    if (!transport_failure) {
      return result;
    }
    if (attempt + 1 >= max_attempts || !SpendRetryToken()) {
      break;
    }
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    uint64_t backoff_us = BackoffWithJitterUs(attempt);
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
  return result;
}

void AsyncNetClient::OnDeadline(uint64_t id) {
  Pending p;
  bool found = false;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      p = std::move(it->second);
      pending_.erase(it);
      found = true;
    }
  }
  if (!found) {
    return;  // the response won the race
  }
  stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  if (p.heartbeat) {
    stats_.heartbeat_failures.fetch_add(1, std::memory_order_relaxed);
  }
  // Tear the connection down: a straggler reply for this id must never be
  // paired with anything later, and the other requests stuck behind the
  // same silent peer fail fast (via OnClose) instead of each waiting out
  // its own deadline. The slot redials on the next submission.
  uint64_t conn_id = 0;
  {
    Slot& slot = *slots_[p.slot];
    std::lock_guard<std::mutex> lk(slot.mu);
    if (slot.generation == p.generation) {
      conn_id = slot.conn_id;
    }
  }
  std::string what = std::string(MsgTypeName(p.type)) + " deadline expired after " +
                     std::to_string(p.deadline_ms) + "ms";
  p.deadline_timer = 0;  // this timer already fired; nothing to cancel
  Complete(std::move(p), Status::DeadlineExceeded(what));
  if (conn_id != 0) {
    loop_.CloseConnection(conn_id,
                          Status::Unavailable("connection torn down after request deadline"));
  }
}

void AsyncNetClient::ArmHeartbeat() {
  if (options_.heartbeat_interval_ms == 0) {
    return;
  }
  // Returns 0 once the loop stops; the chain simply ends there.
  loop_.AddTimer(options_.heartbeat_interval_ms, [this] { HeartbeatTick(); });
}

void AsyncNetClient::HeartbeatTick() {
  NetRequest ping;
  ping.type = MsgType::kPing;
  for (size_t s = 0; s < slots_.size(); ++s) {
    {
      std::lock_guard<std::mutex> lk(slots_[s]->mu);
      if (slots_[s]->conn_id == 0) {
        continue;  // probe existing connections only; never dial from here
      }
    }
    ping.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    Pending p;
    p.heartbeat = true;
    p.deadline_ms = options_.heartbeat_timeout_ms;
    stats_.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
    // allow_block=false: this runs on the event-loop thread, and blocking
    // on write-queue backpressure here would deadlock the drain.
    SubmitEncoded(MsgType::kPing, ping.id, EncodeRequest(ping), std::move(p), &s,
                  /*allow_block=*/false);
  }
  ArmHeartbeat();
}

bool AsyncNetClient::BreakerAllow() {
  const RetryPolicy& rp = options_.retry;
  if (rp.breaker_failure_threshold <= 0) {
    return true;
  }
  std::lock_guard<std::mutex> lk(policy_mu_);
  switch (breaker_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (NowMicros() - breaker_opened_us_ >= rp.breaker_open_ms * 1000) {
        breaker_ = BreakerState::kHalfOpen;
        probe_inflight_ = true;
        return true;  // this caller is the half-open probe
      }
      return false;
    case BreakerState::kHalfOpen:
      if (!probe_inflight_) {
        probe_inflight_ = true;
        return true;
      }
      return false;  // one probe at a time
  }
  return true;
}

void AsyncNetClient::BreakerRecord(bool success) {
  const RetryPolicy& rp = options_.retry;
  if (rp.breaker_failure_threshold <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lk(policy_mu_);
  probe_inflight_ = false;
  if (success) {
    breaker_ = BreakerState::kClosed;
    consecutive_failures_ = 0;
    return;
  }
  if (breaker_ == BreakerState::kHalfOpen) {
    // The probe failed: back to open for another cool-down.
    breaker_ = BreakerState::kOpen;
    breaker_opened_us_ = NowMicros();
    stats_.breaker_open.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++consecutive_failures_;
  if (breaker_ == BreakerState::kClosed &&
      consecutive_failures_ >= rp.breaker_failure_threshold) {
    breaker_ = BreakerState::kOpen;
    breaker_opened_us_ = NowMicros();
    stats_.breaker_open.fetch_add(1, std::memory_order_relaxed);
  }
}

bool AsyncNetClient::SpendRetryToken() {
  std::lock_guard<std::mutex> lk(policy_mu_);
  if (retry_tokens_ < 1.0) {
    return false;
  }
  retry_tokens_ -= 1.0;
  return true;
}

uint64_t AsyncNetClient::BackoffWithJitterUs(int attempt) {
  const RetryPolicy& rp = options_.retry;
  double base = static_cast<double>(rp.initial_backoff_us) * std::pow(2.0, attempt);
  base = std::min(base, static_cast<double>(rp.max_backoff_us));
  double j = std::clamp(rp.jitter, 0.0, 1.0);
  std::lock_guard<std::mutex> lk(policy_mu_);
  std::uniform_real_distribution<double> dist(1.0 - j, 1.0 + j);
  return static_cast<uint64_t>(base * dist(jitter_rng_));
}

void AsyncNetClient::OnFrame(size_t s, uint64_t generation, Bytes payload) {
  stats_.bytes_received.fetch_add(payload.size() + 4, std::memory_order_relaxed);
  MsgType type;
  uint64_t id = 0;
  Status peeked = PeekHeader(payload, &type, &id);

  Pending p;
  bool found = false;
  if (peeked.ok() && type == MsgType::kResponse) {
    std::lock_guard<std::mutex> lk(pending_mu_);
    auto it = pending_.find(id);
    if (it != pending_.end() && it->second.slot == s && it->second.generation == generation) {
      p = std::move(it->second);
      pending_.erase(it);
      found = true;
    }
  }
  if (!found) {
    // Unparseable header or an id we never sent: the stream can no longer
    // be trusted. Closing fails everything pending on this connection.
    uint64_t conn_id;
    {
      Slot& slot = *slots_[s];
      std::lock_guard<std::mutex> lk(slot.mu);
      conn_id = slot.generation == generation ? slot.conn_id : 0;
    }
    if (conn_id != 0) {
      loop_.CloseConnection(conn_id,
                            Status::Internal("response for unknown request id (desync)"));
    }
    return;
  }

  NetResponse resp;
  Status decoded = DecodeResponse(payload, p.type, &resp);
  if (!decoded.ok()) {
    Complete(std::move(p), decoded);
    return;
  }
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  Complete(std::move(p), std::move(resp));
}

void AsyncNetClient::OnClose(size_t s, uint64_t generation, const Status& reason) {
  {
    Slot& slot = *slots_[s];
    std::lock_guard<std::mutex> lk(slot.mu);
    if (slot.generation == generation) {
      slot.conn_id = 0;  // next submission redials
    }
  }
  FailPendingsOf(s, generation,
                 reason.ok() ? Status::Unavailable("connection closed") : reason);
}

void AsyncNetClient::FailPendingsOf(size_t s, uint64_t generation, const Status& reason) {
  // Fail fast: every request in flight on the lost connection completes
  // *now* with Unavailable — callers never wait out a timeout for a socket
  // that is already gone.
  std::vector<Pending> lost;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.slot == s && it->second.generation == generation) {
        lost.push_back(std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Status unavailable = reason.code() == StatusCode::kUnavailable
                           ? reason
                           : Status::Unavailable(reason.message().empty()
                                                     ? "connection closed"
                                                     : reason.message());
  for (Pending& p : lost) {
    Complete(std::move(p), unavailable);
  }
}

void AsyncNetClient::Complete(Pending&& p, StatusOr<NetResponse> result) {
  if (p.deadline_timer != 0) {
    // Harmless if the timer already fired: OnDeadline only completes
    // entries it erased itself, and a fired timer id no longer cancels.
    loop_.CancelTimer(p.deadline_timer);
  }
  uint64_t inflight = inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (p.submit_ns != 0) {
    Tracer& tracer = Tracer::Get();
    if (tracer.enabled()) {
      tracer.RecordSpan("rpc", MsgTypeName(p.type), p.submit_ns,
                        NowNanos() - p.submit_ns);
      tracer.RecordCounter("net", "net.rpc_inflight", inflight);
    }
  }
  if (p.callback) {
    p.callback(std::move(result));
    return;
  }
  if (p.cq != nullptr) {
    p.cq->Push(p.tag, std::move(result));
    return;
  }
  if (p.fut != nullptr) {
    {
      std::lock_guard<std::mutex> lk(p.fut->mu);
      p.fut->result = std::move(result);
      p.fut->done = true;
    }
    p.fut->cv.notify_all();
  }
}

}  // namespace obladi
