#include "src/net/async_client.h"

#include <utility>

#include "src/common/clock.h"
#include "src/obs/trace.h"

namespace obladi {

// --- NetFuture --------------------------------------------------------------

NetFuture::NetFuture() : state_(std::make_shared<State>()) {}

const StatusOr<NetResponse>& NetFuture::Wait() const {
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [&] { return state_->done; });
  return state_->result;
}

StatusOr<NetResponse> NetFuture::Take() {
  std::unique_lock<std::mutex> lk(state_->mu);
  state_->cv.wait(lk, [&] { return state_->done; });
  return std::move(state_->result);
}

bool NetFuture::Ready() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->done;
}

// --- CompletionQueue --------------------------------------------------------

void CompletionQueue::Push(uint64_t tag, StatusOr<NetResponse> result) {
  // Notify while holding the lock: a drainer may destroy this queue the
  // moment its predicate is satisfiable, so the notify must not touch cv_
  // after the drainer can wake.
  std::lock_guard<std::mutex> lk(mu_);
  Completion c;
  c.tag = tag;
  c.result = std::move(result);
  done_.push_back(std::move(c));
  cv_.notify_all();
}

CompletionQueue::Completion CompletionQueue::Next() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !done_.empty(); });
  Completion c = std::move(done_.front());
  done_.pop_front();
  return c;
}

std::vector<CompletionQueue::Completion> CompletionQueue::Drain(size_t n) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done_.size() >= n; });
  std::vector<Completion> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(done_.front()));
    done_.pop_front();
  }
  return out;
}

size_t CompletionQueue::ready() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_.size();
}

// --- AsyncNetClient ---------------------------------------------------------

AsyncNetClient::AsyncNetClient(AsyncClientOptions options) : options_(std::move(options)) {
  size_t n = options_.num_connections == 0 ? 1 : options_.num_connections;
  slots_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

AsyncNetClient::~AsyncNetClient() {
  // Stopping the loop kills every connection, which routes through OnClose
  // and fails everything still pending — no waiter is left hanging.
  loop_.Stop();
}

Status AsyncNetClient::Start() { return loop_.Start(); }

StatusOr<std::shared_ptr<AsyncNetClient>> AsyncNetClient::Connect(AsyncClientOptions options) {
  auto client = std::make_shared<AsyncNetClient>(std::move(options));
  OBLADI_RETURN_IF_ERROR(client->Start());
  NetRequest ping;
  ping.type = MsgType::kPing;
  auto resp = client->Call(std::move(ping));
  if (!resp.ok()) {
    return resp.status();
  }
  Status st = resp->ToStatus();
  if (!st.ok()) {
    return st;
  }
  return client;
}

Status AsyncNetClient::EnsureConnectedLocked(size_t s, Slot& slot) {
  if (slot.conn_id != 0) {
    return Status::Ok();
  }
  auto sock = TcpSocket::Connect(options_.host, options_.port);
  if (!sock.ok()) {
    return sock.status();
  }
  uint64_t generation = ++slot.generation;
  EventLoop::ConnectionHandlers handlers;
  handlers.on_frame = [this, s, generation](Bytes payload) {
    OnFrame(s, generation, std::move(payload));
  };
  handlers.on_close = [this, s, generation](const Status& reason) {
    OnClose(s, generation, reason);
  };
  auto conn = loop_.AddConnection(std::move(*sock), std::move(handlers),
                                  options_.max_frame_bytes, options_.write_queue_cap);
  if (!conn.ok()) {
    return conn.status();
  }
  slot.conn_id = *conn;
  if (slot.ever_connected) {
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  }
  slot.ever_connected = true;
  return Status::Ok();
}

NetFuture AsyncNetClient::Submit(NetRequest req) {
  NetFuture fut;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Pending p;
  p.fut = fut.state_;
  SubmitEncoded(req.type, req.id, EncodeRequest(req), std::move(p));
  return fut;
}

void AsyncNetClient::Submit(NetRequest req, CompletionQueue* cq, uint64_t tag) {
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Pending p;
  p.cq = cq;
  p.tag = tag;
  SubmitEncoded(req.type, req.id, EncodeRequest(req), std::move(p));
}

void AsyncNetClient::Submit(NetRequest req, ResponseCallback done) {
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Pending p;
  p.callback = std::move(done);
  SubmitEncoded(req.type, req.id, EncodeRequest(req), std::move(p));
}

void AsyncNetClient::SubmitEncoded(MsgType type, uint64_t id, const Bytes& payload,
                                   Pending p) {
  p.type = type;
  Tracer& tracer = Tracer::Get();
  uint64_t inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (tracer.enabled()) {
    // Submit->complete latency span, recorded at completion (rpc category,
    // named by message type).
    p.submit_ns = NowNanos();
    tracer.RecordCounter("net", "net.rpc_inflight", inflight);
  }
  size_t s = next_slot_.fetch_add(1, std::memory_order_relaxed) % slots_.size();
  Slot& slot = *slots_[s];

  // slot.mu serializes dialing and keeps the (conn_id, generation) pair
  // coherent for the pending entry; it is NOT held across the response.
  std::unique_lock<std::mutex> lk(slot.mu);
  Status st = EnsureConnectedLocked(s, slot);
  if (!st.ok()) {
    lk.unlock();
    Complete(std::move(p), st);
    return;
  }
  p.slot = s;
  p.generation = slot.generation;
  uint64_t conn_id = slot.conn_id;
  {
    // Register before sending: on a loopback the response can land before
    // SendFrame even returns.
    std::lock_guard<std::mutex> plk(pending_mu_);
    pending_.emplace(id, std::move(p));
  }
  // Drop slot.mu before touching the wire: SendFrame can block on
  // backpressure, and its fatal-send path runs KillConnection -> on_close
  // -> OnClose on THIS thread, which relocks slot.mu (self-deadlock if
  // still held). The pending entry is already registered, so the races
  // this opens are the ones the whoever-erases-completes protocol handles.
  lk.unlock();
  st = loop_.SendFrame(conn_id, payload);
  if (st.ok()) {
    // Wire-layer accounting (frame + 4-byte length prefix), mirroring the
    // server's bytes_received counter for the same frame.
    stats_.bytes_sent.fetch_add(payload.size() + 4, std::memory_order_relaxed);
  }
  if (!st.ok()) {
    // The connection died underneath us. OnClose may have raced us to the
    // pending entry; whoever erases it completes it.
    Pending mine;
    bool still_pending = false;
    {
      std::lock_guard<std::mutex> plk(pending_mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        mine = std::move(it->second);
        pending_.erase(it);
        still_pending = true;
      }
    }
    if (still_pending) {
      Complete(std::move(mine), st);
    }
  }
}

StatusOr<NetResponse> AsyncNetClient::Call(NetRequest req) {
  bool retryable = req.type != MsgType::kLogAppend && req.type != MsgType::kLogAppendSync;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Bytes payload = EncodeRequest(req);
  NetFuture fut;
  {
    Pending p;
    p.fut = fut.state_;
    SubmitEncoded(req.type, req.id, payload, std::move(p));
  }
  auto result = fut.Take();
  if (!result.ok() && result.status().code() == StatusCode::kUnavailable && retryable) {
    // The connection was likely stale (storage node restarted); the slot
    // redials on resubmission, reusing the encoded payload and id (the old
    // pending entry is gone, so the id cannot collide). Every request type
    // is idempotent (reads, versioned bucket writes, truncations, sync)
    // EXCEPT kLogAppend, which must stay at-most-once — the server may have
    // appended and died before answering, and a duplicate WAL record would
    // corrupt recovery.
    NetFuture retry;
    Pending p;
    p.fut = retry.state_;
    SubmitEncoded(req.type, req.id, payload, std::move(p));
    result = retry.Take();
  }
  return result;
}

void AsyncNetClient::OnFrame(size_t s, uint64_t generation, Bytes payload) {
  stats_.bytes_received.fetch_add(payload.size() + 4, std::memory_order_relaxed);
  MsgType type;
  uint64_t id = 0;
  Status peeked = PeekHeader(payload, &type, &id);

  Pending p;
  bool found = false;
  if (peeked.ok() && type == MsgType::kResponse) {
    std::lock_guard<std::mutex> lk(pending_mu_);
    auto it = pending_.find(id);
    if (it != pending_.end() && it->second.slot == s && it->second.generation == generation) {
      p = std::move(it->second);
      pending_.erase(it);
      found = true;
    }
  }
  if (!found) {
    // Unparseable header or an id we never sent: the stream can no longer
    // be trusted. Closing fails everything pending on this connection.
    uint64_t conn_id;
    {
      Slot& slot = *slots_[s];
      std::lock_guard<std::mutex> lk(slot.mu);
      conn_id = slot.generation == generation ? slot.conn_id : 0;
    }
    if (conn_id != 0) {
      loop_.CloseConnection(conn_id,
                            Status::Internal("response for unknown request id (desync)"));
    }
    return;
  }

  NetResponse resp;
  Status decoded = DecodeResponse(payload, p.type, &resp);
  if (!decoded.ok()) {
    Complete(std::move(p), decoded);
    return;
  }
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  Complete(std::move(p), std::move(resp));
}

void AsyncNetClient::OnClose(size_t s, uint64_t generation, const Status& reason) {
  {
    Slot& slot = *slots_[s];
    std::lock_guard<std::mutex> lk(slot.mu);
    if (slot.generation == generation) {
      slot.conn_id = 0;  // next submission redials
    }
  }
  FailPendingsOf(s, generation,
                 reason.ok() ? Status::Unavailable("connection closed") : reason);
}

void AsyncNetClient::FailPendingsOf(size_t s, uint64_t generation, const Status& reason) {
  // Fail fast: every request in flight on the lost connection completes
  // *now* with Unavailable — callers never wait out a timeout for a socket
  // that is already gone.
  std::vector<Pending> lost;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.slot == s && it->second.generation == generation) {
        lost.push_back(std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Status unavailable = reason.code() == StatusCode::kUnavailable
                           ? reason
                           : Status::Unavailable(reason.message().empty()
                                                     ? "connection closed"
                                                     : reason.message());
  for (Pending& p : lost) {
    Complete(std::move(p), unavailable);
  }
}

void AsyncNetClient::Complete(Pending&& p, StatusOr<NetResponse> result) {
  uint64_t inflight = inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (p.submit_ns != 0) {
    Tracer& tracer = Tracer::Get();
    if (tracer.enabled()) {
      tracer.RecordSpan("rpc", MsgTypeName(p.type), p.submit_ns,
                        NowNanos() - p.submit_ns);
      tracer.RecordCounter("net", "net.rpc_inflight", inflight);
    }
  }
  if (p.callback) {
    p.callback(std::move(result));
    return;
  }
  if (p.cq != nullptr) {
    p.cq->Push(p.tag, std::move(result));
    return;
  }
  if (p.fut != nullptr) {
    {
      std::lock_guard<std::mutex> lk(p.fut->mu);
      p.fut->result = std::move(result);
      p.fut->done = true;
    }
    p.fut->cv.notify_all();
  }
}

}  // namespace obladi
