// Replicated storage tier: fan one shard's traffic out to R replicas with
// quorum writes, automatic read failover, and epoch-consistent catch-up.
//
// ReplicatedBucketStore / ReplicatedLogStore wrap R same-shaped stores
// (usually RemoteBucketStore/RemoteLogStore clients over AsyncNetClient,
// in-memory stores in tests). Writes fan to every *current* replica and
// acknowledge once `write_quorum` of them succeed; reads go to the current
// primary (the first current replica) and fail over automatically when it
// answers with a retryable transport error (kUnavailable — which is also how
// an open circuit breaker surfaces — or kDeadlineExceeded). A replica that
// fails a write or a read is demoted to *lagging*: it stops receiving
// traffic and accumulates a catch-up obligation instead.
//
// Catch-up is epoch replay, not op shipping. For buckets, shadow paging
// makes the live state fully described by "which versions of which buckets
// exist" — the store tracks that index for every acknowledged write, marks
// the buckets a lagging replica missed dirty, and TryHealReplicas() rebuilds
// exactly those buckets on the healing replica by reading the live versions
// from the primary and truncating to the same floor. For the WAL, appends
// are at-most-once over the network, so the store keeps an ordered buffer of
// recent ops plus a per-replica cursor; a failed append leaves the cursor
// *ambiguous* and catch-up first probes the replica's NextLsn() to decide
// whether the in-doubt record landed before replaying the tail. A replica
// whose LSNs cannot be reconciled (it lost acknowledged records) is marked
// dead rather than silently resynced.
//
// Demotion only ever happens on retryable transport errors: a semantic
// error (InvalidArgument, NotFound) is the caller's problem and returns
// identically from every replica, so treating it as replica failure would
// shrink the healthy set on perfectly healthy deployments.
#ifndef OBLADI_SRC_NET_REPLICATED_STORE_H_
#define OBLADI_SRC_NET_REPLICATED_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/storage/bucket_store.h"

namespace obladi {

struct ReplicatedStoreOptions {
  // Writes acknowledge after this many replica successes (clamped to
  // [1, R]). With quorum < R a write can succeed while a minority replica
  // is down — the down replica is demoted and caught up later.
  uint32_t write_quorum = 1;
  // WAL catch-up buffer cap: once the ordered op tail a lagging replica
  // still needs exceeds this many bytes, that replica is marked dead
  // instead of stalling trim forever.
  size_t max_pending_log_bytes = 64ull << 20;
  // Max ops replayed per locked-snapshot round during WAL catch-up.
  size_t log_replay_chunk = 256;
};

// True for the transport-level failures that justify demoting a replica.
inline bool IsReplicaRetryable(const Status& s) {
  return s.code() == StatusCode::kUnavailable || s.code() == StatusCode::kDeadlineExceeded;
}

class ReplicatedBucketStore : public BucketStore {
 public:
  ReplicatedBucketStore(std::vector<std::shared_ptr<BucketStore>> replicas,
                        ReplicatedStoreOptions options = {});

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override;
  std::vector<StatusOr<Bytes>> ReadSlotsBatch(const std::vector<SlotRef>& refs) override;
  std::vector<StatusOr<PathXorResult>> ReadPathsXor(const std::vector<PathSlots>& paths,
                                                    uint32_t header_bytes,
                                                    uint32_t trailer_bytes) override;
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override;
  Status WriteBucketsBatch(std::vector<BucketImage> images) override;
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override;
  Status TruncateBucketsBatch(const std::vector<TruncateRef>& refs) override;

  bool SupportsAsyncBatches() const override;
  void ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) override;
  void WriteBucketsBatchAsync(std::vector<BucketImage> images, WriteBucketsDone done) override;
  void ReadPathsXorAsync(std::vector<PathSlots> paths, uint32_t header_bytes,
                         uint32_t trailer_bytes, ReadPathsXorDone done) override;

  size_t num_buckets() const override;
  // nullptr: one aggregate counter would double-charge fanned-out traffic.
  // Per-replica transport stats are exposed via replication_stats().
  NetworkStats* network_stats() override { return nullptr; }

  ReplicationStats replication_stats() override;
  void NoteEpochRetired(EpochId epoch) override;
  Status TryHealReplicas() override;

  // Test hook: index of the replica reads currently go to (-1 if none).
  int PrimaryIndexForTest();

 private:
  struct Replica {
    std::shared_ptr<BucketStore> store;
    ReplicaHealth health = ReplicaHealth::kCurrent;
    uint64_t lag_start_epoch = 0;
    // A heal pass is in flight for this replica (K shard views share one
    // replica set and may all kick TryHealReplicas; only one pass runs).
    bool healing = false;
    // Buckets whose state on this replica is stale (missed writes/truncates
    // while lagging). Epoch replay rebuilds exactly these.
    std::set<BucketIndex> dirty;
  };

  int PrimaryIndexLocked() const;
  // Demote `index` after a retryable failure; never demotes the last
  // current replica (someone has to keep serving — errors then propagate).
  // Returns true if another current replica remains to fail over to.
  bool DemoteLocked(size_t index, bool count_failover);
  void MarkLaggingDirtyLocked(size_t index, BucketIndex bucket);
  // Applies a quorum-acknowledged write/truncate to the live version index.
  void RecordWriteLocked(BucketIndex bucket, uint32_t version, uint32_t slot_count);
  void RecordTruncateLocked(BucketIndex bucket, uint32_t keep_from_version);
  Status FinishWriteLocked(const std::vector<BucketImage>& images,
                           const std::vector<TruncateRef>& truncates, uint32_t oks,
                           const std::vector<size_t>& retryable_failures, Status first_error);
  // One full catch-up attempt for one lagging replica. HealReplica guards
  // with the healing flag; HealReplicaImpl does the replay rounds.
  Status HealReplica(size_t index);
  Status HealReplicaImpl(size_t index);

  template <typename Result>
  std::vector<StatusOr<Result>> ReadWithFailover(
      const std::function<std::vector<StatusOr<Result>>(BucketStore&)>& op, size_t n);

  struct AsyncReadCtx;
  struct AsyncXorCtx;
  struct AsyncWriteCtx;
  void SubmitReadSlots(std::shared_ptr<AsyncReadCtx> ctx);
  void SubmitReadPathsXor(std::shared_ptr<AsyncXorCtx> ctx);

  const ReplicatedStoreOptions options_;
  const uint32_t quorum_;

  mutable std::mutex mu_;
  std::vector<Replica> replicas_;
  // Live version index per bucket: version -> slot count. This is the whole
  // replicated state under shadow paging, and the replay plan for catch-up.
  std::vector<std::map<uint32_t, uint32_t>> live_;
  // Writes/truncates whose wire phase has started but whose outcome has not
  // yet been applied by FinishWriteLocked. The dirty marks that keep a
  // lagging replica honest land only when a write *finishes* (after the
  // replica stores have it), so heal promotion waits for this to drain —
  // promoting mid-write would strand an acknowledged write on the
  // about-to-be-primary. writes_cv_ fires when the count hits zero.
  uint32_t writes_in_flight_ = 0;
  std::condition_variable writes_cv_;
  uint64_t epoch_ = 0;
  uint64_t failovers_ = 0;
  uint64_t resyncs_ = 0;
  uint64_t resync_epochs_ = 0;
  uint64_t generation_ = 0;
};

class ReplicatedLogStore : public LogStore {
 public:
  ReplicatedLogStore(std::vector<std::shared_ptr<LogStore>> replicas,
                     ReplicatedStoreOptions options = {});

  StatusOr<uint64_t> Append(Bytes record) override;
  StatusOr<uint64_t> AppendSync(Bytes record) override;
  Status Sync() override;
  StatusOr<std::vector<Bytes>> ReadAll() override;
  Status Truncate(uint64_t upto_lsn) override;
  uint64_t NextLsn() const override;
  NetworkStats* network_stats() override { return nullptr; }

  ReplicationStats replication_stats() override;
  void NoteEpochRetired(EpochId epoch) override;
  Status TryHealReplicas() override;

  int PrimaryIndexForTest();

 private:
  // One buffered op a lagging replica may still need to replay. Appends
  // carry their assigned LSN so replay can verify the replica assigns the
  // same one (LSN divergence means lost acknowledged data -> dead).
  struct Op {
    bool truncate = false;
    uint64_t lsn_or_upto = 0;
    Bytes record;
  };
  struct Replica {
    std::shared_ptr<LogStore> store;
    ReplicaHealth health = ReplicaHealth::kCurrent;
    uint64_t lag_start_epoch = 0;
    bool healing = false;
    // Global index (ops_base_-relative deque offsetting) of the next op this
    // replica needs. Current replicas always sit at the buffer end.
    uint64_t next_op = 0;
    // The op at next_op is an append whose fate is unknown (the transport
    // failed after send). Catch-up probes NextLsn() before replaying.
    bool ambiguous = false;
  };

  int PrimaryIndexLocked() const;
  // `demote_last`: appends must demote even the last current replica (the
  // LSN bookkeeping cannot keep serving past a missed record); read
  // failover keeps the last replica serving instead.
  bool DemoteLocked(size_t index, bool ambiguous, bool count_failover, bool demote_last);
  // Drop buffered ops every non-dead replica has applied; kill laggards
  // whose tail exceeds the byte cap.
  void TrimOpsLocked();
  StatusOr<uint64_t> AppendImpl(Bytes record, bool fused_sync);
  Status HealReplica(size_t index);
  Status HealReplicaImpl(size_t index);

  const ReplicatedStoreOptions options_;
  const uint32_t quorum_;

  // WAL order lock, acquired BEFORE mu_ (never the other way around). It
  // serializes the wire phase of Append/Truncate/Sync so every replica
  // receives ops in exactly the order ops_ records them — at-most-once
  // appends cannot be reordered or raced per replica — and it is the
  // barrier heal snapshots take so replay never re-delivers an op a stale
  // direct send is still carrying. mu_ alone guards bookkeeping (ops_,
  // cursors, health, next_lsn_), so NextLsn(), replication_stats(), and
  // heal bookkeeping never stall behind a slow replica's transport
  // deadline; appends themselves still serialize (the LSN a replica assigns
  // must match the send order, which a concurrent wire phase would break).
  std::mutex io_mu_;
  mutable std::mutex mu_;
  std::vector<Replica> replicas_;
  std::deque<Op> ops_;
  uint64_t ops_base_ = 0;   // global index of ops_.front()
  size_t ops_bytes_ = 0;    // payload bytes buffered in ops_
  uint64_t next_lsn_ = 0;
  uint64_t epoch_ = 0;
  uint64_t failovers_ = 0;
  uint64_t resyncs_ = 0;
  uint64_t resync_epochs_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_REPLICATED_STORE_H_
