#include "src/net/replicated_store.h"

#include <algorithm>
#include <utility>

namespace obladi {

namespace {

// Bound on heal rounds per pass: each round either drains work or races a
// concurrent writer; a live workload can keep re-dirtying forever, and the
// retire loop will kick the next pass, so give up rather than spin.
constexpr int kMaxHealRounds = 4096;

}  // namespace

// --- ReplicatedBucketStore --------------------------------------------------

ReplicatedBucketStore::ReplicatedBucketStore(std::vector<std::shared_ptr<BucketStore>> replicas,
                                             ReplicatedStoreOptions options)
    : options_(options),
      quorum_(std::clamp<uint32_t>(options.write_quorum, 1,
                                   static_cast<uint32_t>(std::max<size_t>(replicas.size(), 1)))) {
  replicas_.reserve(replicas.size());
  for (auto& store : replicas) {
    Replica r;
    r.store = std::move(store);
    replicas_.push_back(std::move(r));
  }
  live_.resize(replicas_.empty() ? 0 : replicas_[0].store->num_buckets());
}

int ReplicatedBucketStore::PrimaryIndexLocked() const {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].health == ReplicaHealth::kCurrent) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ReplicatedBucketStore::PrimaryIndexForTest() {
  std::lock_guard<std::mutex> lk(mu_);
  return PrimaryIndexLocked();
}

bool ReplicatedBucketStore::DemoteLocked(size_t index, bool count_failover) {
  if (replicas_[index].health != ReplicaHealth::kCurrent) {
    // Someone demoted it concurrently; report whether a target remains.
    return PrimaryIndexLocked() >= 0;
  }
  size_t current = 0;
  for (const Replica& r : replicas_) {
    current += r.health == ReplicaHealth::kCurrent;
  }
  if (current <= 1) {
    // The last replica standing keeps serving; bucket state is idempotent,
    // so there is nothing a demotion would protect.
    return false;
  }
  const bool was_primary = PrimaryIndexLocked() == static_cast<int>(index);
  Replica& r = replicas_[index];
  r.health = ReplicaHealth::kLagging;
  r.lag_start_epoch = epoch_;
  generation_++;
  // Demoting the primary is a failover no matter which path noticed the
  // outage first — a quorum write fan-out demoting it moves reads exactly
  // as a failed read would.
  if (count_failover || was_primary) {
    failovers_++;
  }
  return true;
}

void ReplicatedBucketStore::MarkLaggingDirtyLocked(size_t index, BucketIndex bucket) {
  replicas_[index].dirty.insert(bucket);
}

void ReplicatedBucketStore::RecordWriteLocked(BucketIndex bucket, uint32_t version,
                                              uint32_t slot_count) {
  if (bucket < live_.size()) {
    live_[bucket][version] = slot_count;
  }
}

void ReplicatedBucketStore::RecordTruncateLocked(BucketIndex bucket, uint32_t keep_from_version) {
  if (bucket < live_.size()) {
    auto& versions = live_[bucket];
    versions.erase(versions.begin(), versions.lower_bound(keep_from_version));
  }
}

template <typename Result>
std::vector<StatusOr<Result>> ReplicatedBucketStore::ReadWithFailover(
    const std::function<std::vector<StatusOr<Result>>(BucketStore&)>& op, size_t n) {
  for (size_t attempt = 0; attempt <= replicas_.size(); ++attempt) {
    std::shared_ptr<BucketStore> primary;
    int p = -1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      p = PrimaryIndexLocked();
      if (p >= 0) {
        primary = replicas_[static_cast<size_t>(p)].store;
      }
    }
    if (p < 0) {
      return std::vector<StatusOr<Result>>(n, Status::Unavailable("no current replica"));
    }
    std::vector<StatusOr<Result>> results = op(*primary);
    bool retryable = false;
    for (const StatusOr<Result>& r : results) {
      if (!r.ok() && IsReplicaRetryable(r.status())) {
        retryable = true;
        break;
      }
    }
    if (!retryable) {
      return results;
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (!DemoteLocked(static_cast<size_t>(p), /*count_failover=*/true)) {
      return results;
    }
  }
  return std::vector<StatusOr<Result>>(n, Status::Unavailable("all replicas failed"));
}

StatusOr<Bytes> ReplicatedBucketStore::ReadSlot(BucketIndex bucket, uint32_t version,
                                                SlotIndex slot) {
  auto out = ReadWithFailover<Bytes>(
      [&](BucketStore& store) {
        std::vector<StatusOr<Bytes>> r;
        r.push_back(store.ReadSlot(bucket, version, slot));
        return r;
      },
      1);
  return std::move(out[0]);
}

std::vector<StatusOr<Bytes>> ReplicatedBucketStore::ReadSlotsBatch(
    const std::vector<SlotRef>& refs) {
  return ReadWithFailover<Bytes>(
      [&](BucketStore& store) { return store.ReadSlotsBatch(refs); }, refs.size());
}

std::vector<StatusOr<PathXorResult>> ReplicatedBucketStore::ReadPathsXor(
    const std::vector<PathSlots>& paths, uint32_t header_bytes, uint32_t trailer_bytes) {
  return ReadWithFailover<PathXorResult>(
      [&](BucketStore& store) { return store.ReadPathsXor(paths, header_bytes, trailer_bytes); },
      paths.size());
}

Status ReplicatedBucketStore::FinishWriteLocked(const std::vector<BucketImage>& images,
                                                const std::vector<TruncateRef>& truncates,
                                                uint32_t oks,
                                                const std::vector<size_t>& retryable_failures,
                                                Status first_error) {
  if (--writes_in_flight_ == 0) {
    writes_cv_.notify_all();
  }
  for (size_t i : retryable_failures) {
    // Demotion may be refused for the last current replica; either way the
    // replica's copy of these buckets is now suspect, so if it did get
    // demoted (now or concurrently) the marks below queue the rebuild.
    DemoteLocked(i, /*count_failover=*/false);
  }
  // Mark the touched buckets dirty on every still-lagging replica AFTER the
  // wire writes have landed, never before they are issued: a heal pass that
  // overlapped this write either sees writes_in_flight_ > 0 and defers
  // promotion, or runs after this point and finds the bucket dirty — either
  // way it must replay the bucket against the post-write live_ index before
  // the replica can rejoin the write set.
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].health != ReplicaHealth::kLagging) {
      continue;
    }
    for (const BucketImage& image : images) {
      MarkLaggingDirtyLocked(i, image.bucket);
    }
    for (const TruncateRef& ref : truncates) {
      MarkLaggingDirtyLocked(i, ref.bucket);
    }
  }
  if (oks >= quorum_) {
    for (const BucketImage& image : images) {
      RecordWriteLocked(image.bucket, image.version, static_cast<uint32_t>(image.slots.size()));
    }
    for (const TruncateRef& ref : truncates) {
      RecordTruncateLocked(ref.bucket, ref.keep_from_version);
    }
    return Status::Ok();
  }
  return first_error.ok() ? Status::Unavailable("write quorum not reached") : first_error;
}

Status ReplicatedBucketStore::WriteBucketsBatch(std::vector<BucketImage> images) {
  std::vector<size_t> targets;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].health == ReplicaHealth::kCurrent) {
        targets.push_back(i);
      }
    }
    if (targets.empty()) {
      return Status::Unavailable("no current replica");
    }
    writes_in_flight_++;
  }
  uint32_t oks = 0;
  Status first_error = Status::Ok();
  std::vector<size_t> failed;
  for (size_t i : targets) {
    std::vector<BucketImage> copy = images;
    Status s = replicas_[i].store->WriteBucketsBatch(std::move(copy));
    if (s.ok()) {
      oks++;
    } else {
      if (first_error.ok()) {
        first_error = s;
      }
      if (IsReplicaRetryable(s)) {
        failed.push_back(i);
      }
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  return FinishWriteLocked(images, {}, oks, failed, std::move(first_error));
}

Status ReplicatedBucketStore::WriteBucket(BucketIndex bucket, uint32_t version,
                                          std::vector<Bytes> slots) {
  std::vector<BucketImage> images;
  images.push_back(BucketImage{bucket, version, std::move(slots)});
  return WriteBucketsBatch(std::move(images));
}

Status ReplicatedBucketStore::TruncateBucketsBatch(const std::vector<TruncateRef>& refs) {
  std::vector<size_t> targets;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].health == ReplicaHealth::kCurrent) {
        targets.push_back(i);
      }
    }
    if (targets.empty()) {
      return Status::Unavailable("no current replica");
    }
    writes_in_flight_++;
  }
  uint32_t oks = 0;
  Status first_error = Status::Ok();
  std::vector<size_t> failed;
  for (size_t i : targets) {
    Status s = replicas_[i].store->TruncateBucketsBatch(refs);
    if (s.ok()) {
      oks++;
    } else {
      if (first_error.ok()) {
        first_error = s;
      }
      if (IsReplicaRetryable(s)) {
        failed.push_back(i);
      }
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  return FinishWriteLocked({}, refs, oks, failed, std::move(first_error));
}

Status ReplicatedBucketStore::TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) {
  return TruncateBucketsBatch({TruncateRef{bucket, keep_from_version}});
}

bool ReplicatedBucketStore::SupportsAsyncBatches() const {
  for (const Replica& r : replicas_) {
    if (!r.store->SupportsAsyncBatches()) {
      return false;
    }
  }
  return !replicas_.empty();
}

struct ReplicatedBucketStore::AsyncReadCtx {
  std::vector<SlotRef> refs;
  ReadSlotsDone done;
  size_t attempts = 0;
};

void ReplicatedBucketStore::SubmitReadSlots(std::shared_ptr<AsyncReadCtx> ctx) {
  std::shared_ptr<BucketStore> primary;
  int p = -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    p = PrimaryIndexLocked();
    if (p >= 0) {
      primary = replicas_[static_cast<size_t>(p)].store;
    }
  }
  if (p < 0) {
    ctx->done(std::vector<StatusOr<Bytes>>(ctx->refs.size(),
                                           Status::Unavailable("no current replica")));
    return;
  }
  std::vector<SlotRef> refs = ctx->refs;
  primary->ReadSlotsBatchAsync(
      std::move(refs), [this, ctx, p](std::vector<StatusOr<Bytes>> results) {
        bool retryable = false;
        for (const StatusOr<Bytes>& r : results) {
          if (!r.ok() && IsReplicaRetryable(r.status())) {
            retryable = true;
            break;
          }
        }
        if (retryable && ctx->attempts < replicas_.size()) {
          bool again = false;
          {
            std::lock_guard<std::mutex> lk(mu_);
            again = DemoteLocked(static_cast<size_t>(p), /*count_failover=*/true);
          }
          if (again) {
            ctx->attempts++;
            SubmitReadSlots(ctx);
            return;
          }
        }
        ctx->done(std::move(results));
      });
}

void ReplicatedBucketStore::ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) {
  auto ctx = std::make_shared<AsyncReadCtx>();
  ctx->refs = std::move(refs);
  ctx->done = std::move(done);
  SubmitReadSlots(std::move(ctx));
}

struct ReplicatedBucketStore::AsyncXorCtx {
  std::vector<PathSlots> paths;
  uint32_t header_bytes = 0;
  uint32_t trailer_bytes = 0;
  ReadPathsXorDone done;
  size_t attempts = 0;
};

void ReplicatedBucketStore::SubmitReadPathsXor(std::shared_ptr<AsyncXorCtx> ctx) {
  std::shared_ptr<BucketStore> primary;
  int p = -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    p = PrimaryIndexLocked();
    if (p >= 0) {
      primary = replicas_[static_cast<size_t>(p)].store;
    }
  }
  if (p < 0) {
    ctx->done(std::vector<StatusOr<PathXorResult>>(ctx->paths.size(),
                                                   Status::Unavailable("no current replica")));
    return;
  }
  std::vector<PathSlots> paths = ctx->paths;
  primary->ReadPathsXorAsync(
      std::move(paths), ctx->header_bytes, ctx->trailer_bytes,
      [this, ctx, p](std::vector<StatusOr<PathXorResult>> results) {
        bool retryable = false;
        for (const StatusOr<PathXorResult>& r : results) {
          if (!r.ok() && IsReplicaRetryable(r.status())) {
            retryable = true;
            break;
          }
        }
        if (retryable && ctx->attempts < replicas_.size()) {
          bool again = false;
          {
            std::lock_guard<std::mutex> lk(mu_);
            again = DemoteLocked(static_cast<size_t>(p), /*count_failover=*/true);
          }
          if (again) {
            ctx->attempts++;
            SubmitReadPathsXor(ctx);
            return;
          }
        }
        ctx->done(std::move(results));
      });
}

void ReplicatedBucketStore::ReadPathsXorAsync(std::vector<PathSlots> paths, uint32_t header_bytes,
                                              uint32_t trailer_bytes, ReadPathsXorDone done) {
  auto ctx = std::make_shared<AsyncXorCtx>();
  ctx->paths = std::move(paths);
  ctx->header_bytes = header_bytes;
  ctx->trailer_bytes = trailer_bytes;
  ctx->done = std::move(done);
  SubmitReadPathsXor(std::move(ctx));
}

struct ReplicatedBucketStore::AsyncWriteCtx {
  std::mutex mu;
  size_t pending = 0;
  uint32_t oks = 0;
  Status first_error;
  std::vector<size_t> failed;
  std::vector<BucketImage> images;
  WriteBucketsDone done;
};

void ReplicatedBucketStore::WriteBucketsBatchAsync(std::vector<BucketImage> images,
                                                   WriteBucketsDone done) {
  std::vector<size_t> targets;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].health == ReplicaHealth::kCurrent) {
        targets.push_back(i);
      }
    }
    if (!targets.empty()) {
      writes_in_flight_++;
    }
  }
  if (targets.empty()) {
    done(Status::Unavailable("no current replica"));
    return;
  }
  auto ctx = std::make_shared<AsyncWriteCtx>();
  ctx->pending = targets.size();
  ctx->images = std::move(images);
  ctx->done = std::move(done);
  for (size_t i : targets) {
    std::vector<BucketImage> copy = ctx->images;
    replicas_[i].store->WriteBucketsBatchAsync(std::move(copy), [this, ctx, i](Status s) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lk(ctx->mu);
        if (s.ok()) {
          ctx->oks++;
        } else {
          if (ctx->first_error.ok()) {
            ctx->first_error = s;
          }
          if (IsReplicaRetryable(s)) {
            ctx->failed.push_back(i);
          }
        }
        last = --ctx->pending == 0;
      }
      if (!last) {
        return;
      }
      Status out;
      {
        std::lock_guard<std::mutex> lk(mu_);
        out = FinishWriteLocked(ctx->images, {}, ctx->oks, ctx->failed, ctx->first_error);
      }
      ctx->done(std::move(out));
    });
  }
}

size_t ReplicatedBucketStore::num_buckets() const {
  return replicas_.empty() ? 0 : replicas_[0].store->num_buckets();
}

ReplicationStats ReplicatedBucketStore::replication_stats() {
  std::lock_guard<std::mutex> lk(mu_);
  ReplicationStats out;
  out.failovers = failovers_;
  out.resyncs = resyncs_;
  out.resync_epochs = resync_epochs_;
  out.generation = generation_;
  int primary = PrimaryIndexLocked();
  out.replicas.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    ReplicaInfo info;
    info.index = static_cast<uint32_t>(i);
    info.primary = static_cast<int>(i) == primary;
    info.health = replicas_[i].health;
    info.lag_epochs = replicas_[i].health == ReplicaHealth::kCurrent
                          ? 0
                          : (epoch_ > replicas_[i].lag_start_epoch
                                 ? epoch_ - replicas_[i].lag_start_epoch
                                 : 0);
    info.stats = replicas_[i].store->network_stats();
    out.replicas.push_back(info);
  }
  return out;
}

void ReplicatedBucketStore::NoteEpochRetired(EpochId epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  epoch_ = std::max<uint64_t>(epoch_, epoch);
}

Status ReplicatedBucketStore::TryHealReplicas() {
  Status first = Status::Ok();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Status s = HealReplica(i);
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Status ReplicatedBucketStore::HealReplica(size_t index) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    Replica& r = replicas_[index];
    if (r.health != ReplicaHealth::kLagging || r.healing) {
      return Status::Ok();
    }
    r.healing = true;
  }
  Status s = HealReplicaImpl(index);
  std::lock_guard<std::mutex> lk(mu_);
  replicas_[index].healing = false;
  return s;
}

Status ReplicatedBucketStore::HealReplicaImpl(size_t index) {
  std::shared_ptr<BucketStore> healer = replicas_[index].store;
  for (int round = 0; round < kMaxHealRounds; ++round) {
    std::set<BucketIndex> batch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      Replica& r = replicas_[index];
      if (r.health != ReplicaHealth::kLagging) {
        return Status::Ok();
      }
      batch.swap(r.dirty);
    }
    if (batch.empty()) {
      // Nothing to replay; prove the replica is reachable before promoting,
      // so a still-partitioned node can't re-enter the write set. The probe
      // is a READ — a mutating probe would grow file-backed replicas on
      // every promotion attempt and fail outright on an empty store. Any
      // definitive answer (including NotFound when no version is live yet)
      // is the replica speaking; only transport-level failures keep it
      // lagging. Prefer a known-live slot so the common case exercises the
      // real read path.
      SlotRef probe_ref{0, 0, 0};
      {
        std::lock_guard<std::mutex> lk(mu_);
        for (size_t b = 0; b < live_.size(); ++b) {
          if (!live_[b].empty()) {
            probe_ref = SlotRef{static_cast<BucketIndex>(b), live_[b].begin()->first, 0};
            break;
          }
        }
      }
      StatusOr<Bytes> probe = healer->ReadSlot(probe_ref.bucket, probe_ref.version,
                                               probe_ref.slot);
      if (!probe.ok() && IsReplicaRetryable(probe.status())) {
        return probe.status();
      }
      std::unique_lock<std::mutex> lk(mu_);
      Replica& r = replicas_[index];
      if (r.health != ReplicaHealth::kLagging) {
        return Status::Ok();
      }
      // A write whose wire phase is still in flight may yet re-dirty this
      // replica (dirty marks land only in FinishWriteLocked, after the
      // replica stores have the data) — wait it out before judging the
      // dirty set, or a write that raced this heal pass would be stranded
      // on a freshly promoted primary.
      writes_cv_.wait(lk, [this] { return writes_in_flight_ == 0; });
      if (r.health != ReplicaHealth::kLagging) {
        return Status::Ok();
      }
      if (!r.dirty.empty()) {
        continue;  // raced a concurrent write; another round
      }
      uint64_t lag = epoch_ > r.lag_start_epoch ? epoch_ - r.lag_start_epoch : 0;
      r.health = ReplicaHealth::kCurrent;
      resyncs_++;
      resync_epochs_ += lag > 0 ? lag : 1;
      generation_++;
      return Status::Ok();
    }
    Status replay = Status::Ok();
    for (BucketIndex bucket : batch) {
      // Snapshot the bucket's live version set; shadow paging means
      // replaying exactly these versions (plus the matching truncation
      // floor) reproduces the committed state. Races with live traffic are
      // fine: any concurrent write/truncate re-marks the bucket dirty.
      std::map<uint32_t, uint32_t> versions;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (bucket < live_.size()) {
          versions = live_[bucket];
        }
      }
      uint32_t floor = versions.empty() ? UINT32_MAX : versions.begin()->first;
      replay = healer->TruncateBucket(bucket, floor);
      if (!replay.ok()) {
        break;
      }
      for (const auto& [version, slot_count] : versions) {
        std::vector<SlotRef> refs;
        refs.reserve(slot_count);
        for (uint32_t s = 0; s < slot_count; ++s) {
          refs.push_back(SlotRef{bucket, version, static_cast<SlotIndex>(s)});
        }
        std::vector<StatusOr<Bytes>> slots = ReadSlotsBatch(refs);  // primary, with failover
        std::vector<Bytes> image;
        image.reserve(slot_count);
        bool version_gone = false;
        for (StatusOr<Bytes>& slot : slots) {
          if (!slot.ok()) {
            if (slot.status().code() == StatusCode::kNotFound) {
              version_gone = true;  // retired meanwhile; the truncate re-dirtied us
              break;
            }
            replay = slot.status();
            break;
          }
          image.push_back(std::move(*slot));
        }
        if (!replay.ok()) {
          break;
        }
        if (version_gone) {
          continue;
        }
        replay = healer->WriteBucket(bucket, version, std::move(image));
        if (!replay.ok()) {
          break;
        }
      }
      if (!replay.ok()) {
        break;
      }
    }
    if (!replay.ok()) {
      std::lock_guard<std::mutex> lk(mu_);
      for (BucketIndex bucket : batch) {
        replicas_[index].dirty.insert(bucket);
      }
      return replay;
    }
  }
  return Status::Internal("bucket replica catch-up did not converge");
}

// --- ReplicatedLogStore -----------------------------------------------------

ReplicatedLogStore::ReplicatedLogStore(std::vector<std::shared_ptr<LogStore>> replicas,
                                       ReplicatedStoreOptions options)
    : options_(options),
      quorum_(std::clamp<uint32_t>(options.write_quorum, 1,
                                   static_cast<uint32_t>(std::max<size_t>(replicas.size(), 1)))) {
  replicas_.reserve(replicas.size());
  for (auto& store : replicas) {
    Replica r;
    r.store = std::move(store);
    next_lsn_ = std::max(next_lsn_, r.store->NextLsn());
    replicas_.push_back(std::move(r));
  }
}

int ReplicatedLogStore::PrimaryIndexLocked() const {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].health == ReplicaHealth::kCurrent) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ReplicatedLogStore::PrimaryIndexForTest() {
  std::lock_guard<std::mutex> lk(mu_);
  return PrimaryIndexLocked();
}

bool ReplicatedLogStore::DemoteLocked(size_t index, bool ambiguous, bool count_failover,
                                      bool demote_last) {
  if (replicas_[index].health != ReplicaHealth::kCurrent) {
    return PrimaryIndexLocked() >= 0;
  }
  if (!demote_last) {
    size_t current = 0;
    for (const Replica& r : replicas_) {
      current += r.health == ReplicaHealth::kCurrent;
    }
    if (current <= 1) {
      return false;
    }
  }
  const bool was_primary = PrimaryIndexLocked() == static_cast<int>(index);
  Replica& r = replicas_[index];
  r.health = ReplicaHealth::kLagging;
  r.lag_start_epoch = epoch_;
  r.ambiguous = ambiguous;
  generation_++;
  if (count_failover || was_primary) {
    failovers_++;
  }
  return PrimaryIndexLocked() >= 0;
}

void ReplicatedLogStore::TrimOpsLocked() {
  auto min_live_cursor = [&] {
    uint64_t min_cursor = ops_base_ + ops_.size();
    for (const Replica& r : replicas_) {
      if (r.health != ReplicaHealth::kDead) {
        min_cursor = std::min(min_cursor, r.next_op);
      }
    }
    return min_cursor;
  };
  auto trim_to = [&](uint64_t cursor) {
    while (ops_base_ < cursor && !ops_.empty()) {
      ops_bytes_ -= ops_.front().record.size();
      ops_.pop_front();
      ops_base_++;
    }
  };
  trim_to(min_live_cursor());
  // A replica too far behind would pin the buffer forever; past the byte
  // cap it is unsalvageable by replay and gets excluded instead.
  while (ops_bytes_ > options_.max_pending_log_bytes) {
    size_t victim = replicas_.size();
    uint64_t lowest = UINT64_MAX;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].health == ReplicaHealth::kLagging && replicas_[i].next_op < lowest) {
        lowest = replicas_[i].next_op;
        victim = i;
      }
    }
    if (victim == replicas_.size()) {
      break;
    }
    replicas_[victim].health = ReplicaHealth::kDead;
    generation_++;
    trim_to(min_live_cursor());
  }
}

StatusOr<uint64_t> ReplicatedLogStore::AppendImpl(Bytes record, bool fused_sync) {
  // io_mu_ (not mu_) is held across the wire phase: see the member comment.
  // Appends therefore still fully serialize with each other — the LSN each
  // replica assigns must match the send order — but observers (NextLsn,
  // replication_stats) and heal bookkeeping no longer stall behind a slow
  // replica's transport deadline.
  std::lock_guard<std::mutex> io(io_mu_);
  std::vector<std::pair<size_t, std::shared_ptr<LogStore>>> targets;
  uint64_t lsn = 0;
  uint64_t end = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].health == ReplicaHealth::kCurrent) {
        targets.emplace_back(i, replicas_[i].store);
      }
    }
    if (targets.empty()) {
      return Status::Unavailable("no current log replica");
    }
    lsn = next_lsn_++;
    ops_bytes_ += record.size();
    ops_.push_back(Op{false, lsn, record});
    end = ops_base_ + ops_.size();
  }
  uint32_t oks = 0;
  Status first_error = Status::Ok();
  std::vector<size_t> acked;
  std::vector<size_t> diverged;
  std::vector<size_t> failed;
  for (auto& [i, store] : targets) {
    StatusOr<uint64_t> got = fused_sync ? store->AppendSync(record) : store->Append(record);
    if (got.ok()) {
      if (*got != lsn) {
        // The replica assigned a different LSN: it lost or gained records
        // relative to the acknowledged history and cannot be replay-healed.
        diverged.push_back(i);
        if (first_error.ok()) {
          first_error = Status::DataLoss("log replica LSN divergence");
        }
      } else {
        acked.push_back(i);
        oks++;
      }
    } else {
      if (first_error.ok()) {
        first_error = got.status();
      }
      if (IsReplicaRetryable(got.status())) {
        failed.push_back(i);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i : acked) {
      replicas_[i].next_op = end;
    }
    for (size_t i : diverged) {
      if (replicas_[i].health != ReplicaHealth::kDead) {
        replicas_[i].health = ReplicaHealth::kDead;
        generation_++;
      }
    }
    for (size_t i : failed) {
      // Fate of the send is unknown (at-most-once): flag the cursor as
      // ambiguous so catch-up probes NextLsn() before replaying. A read
      // path may have demoted the replica while our send was in flight —
      // the in-doubt op still sits at its cursor, so the flag must be set
      // even when DemoteLocked short-circuits on an already-lagging one.
      Replica& r = replicas_[i];
      if (r.health == ReplicaHealth::kCurrent) {
        DemoteLocked(i, /*ambiguous=*/true, /*count_failover=*/false, /*demote_last=*/true);
      } else if (r.health == ReplicaHealth::kLagging) {
        r.ambiguous = true;
      }
    }
    TrimOpsLocked();
  }
  if (oks >= quorum_) {
    return lsn;
  }
  return first_error.ok() ? Status::Unavailable("log append quorum not reached")
                          : std::move(first_error);
}

StatusOr<uint64_t> ReplicatedLogStore::Append(Bytes record) {
  return AppendImpl(std::move(record), /*fused_sync=*/false);
}

StatusOr<uint64_t> ReplicatedLogStore::AppendSync(Bytes record) {
  return AppendImpl(std::move(record), /*fused_sync=*/true);
}

Status ReplicatedLogStore::Sync() {
  std::lock_guard<std::mutex> io(io_mu_);
  std::vector<std::pair<size_t, std::shared_ptr<LogStore>>> targets;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].health == ReplicaHealth::kCurrent) {
        targets.emplace_back(i, replicas_[i].store);
      }
    }
  }
  if (targets.empty()) {
    return Status::Unavailable("no current log replica");
  }
  uint32_t oks = 0;
  Status first_error = Status::Ok();
  std::vector<size_t> failed;
  for (auto& [i, store] : targets) {
    Status s = store->Sync();
    if (s.ok()) {
      oks++;
    } else {
      if (first_error.ok()) {
        first_error = s;
      }
      if (IsReplicaRetryable(s)) {
        failed.push_back(i);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i : failed) {
      // Not ambiguous: Sync carries no record, the cursor stays exact.
      // Catch-up re-Syncs before promoting, restoring durability.
      DemoteLocked(i, /*ambiguous=*/false, /*count_failover=*/false, /*demote_last=*/false);
    }
  }
  if (oks >= quorum_) {
    return Status::Ok();
  }
  return first_error.ok() ? Status::Unavailable("log sync quorum not reached")
                          : std::move(first_error);
}

Status ReplicatedLogStore::Truncate(uint64_t upto_lsn) {
  std::lock_guard<std::mutex> io(io_mu_);
  std::vector<std::pair<size_t, std::shared_ptr<LogStore>>> targets;
  uint64_t end = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i].health == ReplicaHealth::kCurrent) {
        targets.emplace_back(i, replicas_[i].store);
      }
    }
    if (targets.empty()) {
      return Status::Unavailable("no current log replica");
    }
    ops_.push_back(Op{true, upto_lsn, {}});
    end = ops_base_ + ops_.size();
  }
  uint32_t oks = 0;
  Status first_error = Status::Ok();
  std::vector<size_t> acked;
  std::vector<size_t> failed;
  for (auto& [i, store] : targets) {
    Status s = store->Truncate(upto_lsn);
    if (s.ok()) {
      acked.push_back(i);
      oks++;
    } else {
      if (first_error.ok()) {
        first_error = s;
      }
      if (IsReplicaRetryable(s)) {
        failed.push_back(i);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (size_t i : acked) {
      replicas_[i].next_op = end;
    }
    for (size_t i : failed) {
      // Truncation is idempotent, so no ambiguity: replay just reissues.
      DemoteLocked(i, /*ambiguous=*/false, /*count_failover=*/false, /*demote_last=*/true);
    }
    TrimOpsLocked();
  }
  if (oks >= quorum_) {
    return Status::Ok();
  }
  return first_error.ok() ? Status::Unavailable("log truncate quorum not reached")
                          : std::move(first_error);
}

StatusOr<std::vector<Bytes>> ReplicatedLogStore::ReadAll() {
  for (size_t attempt = 0; attempt <= replicas_.size(); ++attempt) {
    std::shared_ptr<LogStore> primary;
    int p = -1;
    {
      std::lock_guard<std::mutex> lk(mu_);
      p = PrimaryIndexLocked();
      if (p >= 0) {
        primary = replicas_[static_cast<size_t>(p)].store;
      }
    }
    if (p < 0) {
      return Status::Unavailable("no current log replica");
    }
    StatusOr<std::vector<Bytes>> result = primary->ReadAll();
    if (result.ok() || !IsReplicaRetryable(result.status())) {
      return result;
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (!DemoteLocked(static_cast<size_t>(p), /*ambiguous=*/false, /*count_failover=*/true,
                      /*demote_last=*/false)) {
      return result;
    }
  }
  return Status::Unavailable("all log replicas failed");
}

uint64_t ReplicatedLogStore::NextLsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_;
}

ReplicationStats ReplicatedLogStore::replication_stats() {
  std::lock_guard<std::mutex> lk(mu_);
  ReplicationStats out;
  out.failovers = failovers_;
  out.resyncs = resyncs_;
  out.resync_epochs = resync_epochs_;
  out.generation = generation_;
  int primary = PrimaryIndexLocked();
  out.replicas.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    ReplicaInfo info;
    info.index = static_cast<uint32_t>(i);
    info.primary = static_cast<int>(i) == primary;
    info.health = replicas_[i].health;
    info.lag_epochs = replicas_[i].health == ReplicaHealth::kCurrent
                          ? 0
                          : (epoch_ > replicas_[i].lag_start_epoch
                                 ? epoch_ - replicas_[i].lag_start_epoch
                                 : 0);
    info.stats = replicas_[i].store->network_stats();
    out.replicas.push_back(info);
  }
  return out;
}

void ReplicatedLogStore::NoteEpochRetired(EpochId epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  epoch_ = std::max<uint64_t>(epoch_, epoch);
}

Status ReplicatedLogStore::TryHealReplicas() {
  Status first = Status::Ok();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    Status s = HealReplica(i);
    if (!s.ok() && first.ok()) {
      first = s;
    }
  }
  return first;
}

Status ReplicatedLogStore::HealReplica(size_t index) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    Replica& r = replicas_[index];
    if (r.health != ReplicaHealth::kLagging || r.healing) {
      return Status::Ok();
    }
    r.healing = true;
  }
  Status s = HealReplicaImpl(index);
  std::lock_guard<std::mutex> lk(mu_);
  replicas_[index].healing = false;
  return s;
}

Status ReplicatedLogStore::HealReplicaImpl(size_t index) {
  std::shared_ptr<LogStore> store = replicas_[index].store;
  for (int round = 0; round < kMaxHealRounds; ++round) {
    std::vector<Op> chunk;
    bool ambiguous = false;
    uint64_t cursor = 0;
    {
      // Taking io_mu_ first is a barrier against the wire phase of a
      // concurrent append/truncate: by the time we snapshot, any op this
      // replica was sent directly (before a mid-flight demotion) has been
      // fully applied to its cursor/ambiguous state, so replay can never
      // deliver an op a stale direct send also carries (a duplicate would
      // read as LSN divergence and falsely kill the replica). Released
      // before the replay RPCs — while the replica lags, replay is the only
      // sender, so appends continue unblocked.
      std::lock_guard<std::mutex> io(io_mu_);
      std::lock_guard<std::mutex> lk(mu_);
      Replica& r = replicas_[index];
      if (r.health != ReplicaHealth::kLagging) {
        return Status::Ok();
      }
      cursor = r.next_op;
      ambiguous = r.ambiguous;
      const uint64_t end = ops_base_ + ops_.size();
      size_t take = static_cast<size_t>(std::min<uint64_t>(
          end - cursor, ambiguous ? 1 : options_.log_replay_chunk));
      chunk.reserve(take);
      for (size_t k = 0; k < take; ++k) {
        chunk.push_back(ops_[static_cast<size_t>(cursor - ops_base_) + k]);
      }
    }
    if (ambiguous) {
      // The op at the cursor is an append whose fate is unknown. Probe the
      // replica's next LSN to decide whether it landed. Sync() first: it is
      // the cheap reachability check, and RemoteLogStore::NextLsn() answers
      // 0 when unreachable, which must not read as "did not land".
      OBLADI_RETURN_IF_ERROR(store->Sync());
      uint64_t next = store->NextLsn();
      std::lock_guard<std::mutex> lk(mu_);
      Replica& r = replicas_[index];
      if (r.health != ReplicaHealth::kLagging) {
        return Status::Ok();
      }
      if (chunk.empty() || chunk[0].truncate) {
        r.ambiguous = false;  // the in-doubt op was already trimmed/resolved
        continue;
      }
      const uint64_t lsn = chunk[0].lsn_or_upto;
      if (next > lsn) {
        if (r.next_op == cursor) {
          r.next_op = cursor + 1;  // it landed
        }
        r.ambiguous = false;
        TrimOpsLocked();
      } else if (next == lsn) {
        r.ambiguous = false;  // it did not land; replay will reissue it
      } else {
        r.health = ReplicaHealth::kDead;
        generation_++;
        return Status::DataLoss("log replica lost acknowledged records");
      }
      continue;
    }
    if (chunk.empty()) {
      // Caught up. Make everything durable, then promote — unless new ops
      // raced in, in which case another round replays them first.
      OBLADI_RETURN_IF_ERROR(store->Sync());
      std::lock_guard<std::mutex> lk(mu_);
      Replica& r = replicas_[index];
      if (r.health != ReplicaHealth::kLagging) {
        return Status::Ok();
      }
      if (r.next_op != ops_base_ + ops_.size() || r.ambiguous) {
        continue;
      }
      uint64_t lag = epoch_ > r.lag_start_epoch ? epoch_ - r.lag_start_epoch : 0;
      r.health = ReplicaHealth::kCurrent;
      resyncs_++;
      resync_epochs_ += lag > 0 ? lag : 1;
      generation_++;
      TrimOpsLocked();
      return Status::Ok();
    }
    size_t applied = 0;
    Status err = Status::Ok();
    for (const Op& op : chunk) {
      if (op.truncate) {
        err = store->Truncate(op.lsn_or_upto);
        if (!err.ok()) {
          break;
        }
      } else {
        StatusOr<uint64_t> got = store->Append(op.record);
        if (!got.ok()) {
          err = got.status();
          std::lock_guard<std::mutex> lk(mu_);
          Replica& r = replicas_[index];
          r.next_op = cursor + applied;
          r.ambiguous = true;  // this replayed append is now the in-doubt op
          return err;
        }
        if (*got != op.lsn_or_upto) {
          std::lock_guard<std::mutex> lk(mu_);
          replicas_[index].health = ReplicaHealth::kDead;
          generation_++;
          return Status::DataLoss("log replica LSN divergence during catch-up");
        }
      }
      applied++;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      replicas_[index].next_op = cursor + applied;
      TrimOpsLocked();
    }
    if (!err.ok()) {
      return err;
    }
  }
  return Status::Internal("log replica catch-up did not converge");
}

}  // namespace obladi
