// Thin RAII wrappers over POSIX TCP sockets, with the wire protocol's
// length-prefixed framing (send/recv one frame = u32 length + payload).
//
// Blocking I/O throughout: a frame send/recv occupies its calling thread,
// which is exactly the concurrency model the rest of the system assumes (the
// ORAM's io_threads pool and the client connection pool provide parallelism
// by issuing from many threads). EINTR is retried; SIGPIPE is suppressed via
// MSG_NOSIGNAL. Shutdown() from another thread unblocks a blocked recv,
// which is how the server and client pools tear down cleanly.
#ifndef OBLADI_SRC_NET_SOCKET_H_
#define OBLADI_SRC_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"

namespace obladi {

class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { Close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // Blocking connect to host:port; sets TCP_NODELAY (the protocol is
  // request/response, so Nagle only adds latency).
  static StatusOr<TcpSocket> Connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  Status SendAll(const uint8_t* data, size_t n);
  Status RecvAll(uint8_t* data, size_t n);

  // One frame: u32 payload length (LE), then the payload. Rejects payloads
  // larger than max_frame_bytes (or than the u32 length field can carry)
  // with InvalidArgument *before* transmitting anything: a wrapped length
  // prefix would silently desync the stream, and an over-limit frame would
  // be dropped by the receiver only after a full wasted transmit.
  Status SendFrame(const Bytes& payload, size_t max_frame_bytes = SIZE_MAX);
  // Receives one frame; rejects frames larger than max_frame_bytes with
  // InvalidArgument (stream desync / garbage — caller should close). A peer
  // that closed cleanly between frames yields Unavailable("peer closed").
  StatusOr<Bytes> RecvFrame(size_t max_frame_bytes);

  // Unblocks any thread blocked in Recv/Send on this socket.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
};

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(TcpListener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds with SO_REUSEADDR (a restarted server reclaims its port
  // immediately) and listens. port 0 picks an ephemeral port; read it back
  // via port().
  static StatusOr<TcpListener> Listen(const std::string& host, uint16_t port,
                                      int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  // Blocking accept. Returns Unavailable once Shutdown() has been called.
  StatusOr<TcpSocket> Accept();

  // Unblocks a blocked Accept().
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_SOCKET_H_
