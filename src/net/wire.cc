#include "src/net/wire.h"

#include "src/common/serde.h"

namespace obladi {
namespace {

bool ValidMsgType(uint8_t raw) {
  return (raw >= static_cast<uint8_t>(MsgType::kReadSlots) &&
          raw <= static_cast<uint8_t>(MsgType::kLogAppendSync)) ||
         raw == static_cast<uint8_t>(MsgType::kResponse);
}

bool ValidStatusCode(uint8_t raw) {
  return raw <= static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
}

void PutHeader(BinaryWriter& w, MsgType type, uint64_t id) {
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(id);
}

// Reads and validates the common header; returns the message type.
Status GetHeader(BinaryReader& r, MsgType* type, uint64_t* id) {
  uint8_t version = r.GetU8();
  uint8_t raw_type = r.GetU8();
  *id = r.GetU64();
  if (!r.ok()) {
    return Status::InvalidArgument("truncated message header");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  if (!ValidMsgType(raw_type)) {
    return Status::InvalidArgument("unknown message type");
  }
  *type = static_cast<MsgType>(raw_type);
  return Status::Ok();
}

// An element count decoded from untrusted bytes: every element occupies at
// least `min_element_bytes` of the remaining payload, so anything larger is
// garbage — reject it before reserving memory for it.
Status CheckCount(const BinaryReader& r, uint32_t n, size_t min_element_bytes) {
  if (static_cast<size_t>(n) * min_element_bytes > r.remaining()) {
    return Status::InvalidArgument("element count exceeds payload size");
  }
  return Status::Ok();
}

Status FinishDecode(const BinaryReader& r) {
  if (!r.ok()) {
    return Status::InvalidArgument("truncated message body");
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after message body");
  }
  return Status::Ok();
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kReadSlots: return "READ_SLOTS";
    case MsgType::kWriteBuckets: return "WRITE_BUCKETS";
    case MsgType::kTruncateBucket: return "TRUNCATE_BUCKET";
    case MsgType::kNumBuckets: return "NUM_BUCKETS";
    case MsgType::kLogAppend: return "LOG_APPEND";
    case MsgType::kLogSync: return "LOG_SYNC";
    case MsgType::kLogReadAll: return "LOG_READ_ALL";
    case MsgType::kLogTruncate: return "LOG_TRUNCATE";
    case MsgType::kLogNextLsn: return "LOG_NEXT_LSN";
    case MsgType::kPing: return "PING";
    case MsgType::kTruncateBucketsBatch: return "TRUNCATE_BUCKETS_BATCH";
    case MsgType::kReadPathsXor: return "READ_PATHS_XOR";
    case MsgType::kLogAppendSync: return "LOG_APPEND_SYNC";
    case MsgType::kResponse: return "RESPONSE";
  }
  return "UNKNOWN";
}

Bytes EncodeRequest(const NetRequest& req) {
  BinaryWriter w;
  PutHeader(w, req.type, req.id);
  switch (req.type) {
    case MsgType::kReadSlots:
      w.PutU32(static_cast<uint32_t>(req.reads.size()));
      for (const SlotRef& ref : req.reads) {
        w.PutU32(ref.bucket);
        w.PutU32(ref.version);
        w.PutU32(ref.slot);
      }
      break;
    case MsgType::kWriteBuckets:
      w.PutU32(static_cast<uint32_t>(req.writes.size()));
      for (const BucketImage& image : req.writes) {
        w.PutU32(image.bucket);
        w.PutU32(image.version);
        w.PutU32(static_cast<uint32_t>(image.slots.size()));
        for (const Bytes& slot : image.slots) {
          w.PutBytes(slot);
        }
      }
      break;
    case MsgType::kTruncateBucket:
      w.PutU32(req.bucket);
      w.PutU32(req.keep_from_version);
      break;
    case MsgType::kTruncateBucketsBatch:
      w.PutU32(static_cast<uint32_t>(req.truncates.size()));
      for (const TruncateRef& ref : req.truncates) {
        w.PutU32(ref.bucket);
        w.PutU32(ref.keep_from_version);
      }
      break;
    case MsgType::kReadPathsXor:
      w.PutU32(req.xor_header_bytes);
      w.PutU32(req.xor_trailer_bytes);
      w.PutU32(static_cast<uint32_t>(req.path_reads.size()));
      for (const PathSlots& path : req.path_reads) {
        w.PutU32(static_cast<uint32_t>(path.slots.size()));
        for (const SlotRef& ref : path.slots) {
          w.PutU32(ref.bucket);
          w.PutU32(ref.version);
          w.PutU32(ref.slot);
        }
      }
      break;
    case MsgType::kLogAppend:
    case MsgType::kLogAppendSync:
      w.PutBytes(req.record);
      break;
    case MsgType::kLogTruncate:
      w.PutU64(req.lsn);
      break;
    case MsgType::kNumBuckets:
    case MsgType::kLogSync:
    case MsgType::kLogReadAll:
    case MsgType::kLogNextLsn:
    case MsgType::kPing:
    case MsgType::kResponse:
      break;
  }
  return w.Take();
}

Status DecodeRequest(const Bytes& payload, NetRequest* out) {
  BinaryReader r(payload);
  *out = NetRequest{};
  OBLADI_RETURN_IF_ERROR(GetHeader(r, &out->type, &out->id));
  if (out->type == MsgType::kResponse) {
    return Status::InvalidArgument("response frame where a request was expected");
  }
  switch (out->type) {
    case MsgType::kReadSlots: {
      uint32_t n = r.GetU32();
      OBLADI_RETURN_IF_ERROR(CheckCount(r, n, 12));
      out->reads.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        SlotRef ref;
        ref.bucket = r.GetU32();
        ref.version = r.GetU32();
        ref.slot = r.GetU32();
        out->reads.push_back(ref);
      }
      break;
    }
    case MsgType::kWriteBuckets: {
      uint32_t n = r.GetU32();
      OBLADI_RETURN_IF_ERROR(CheckCount(r, n, 12));
      out->writes.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        BucketImage image;
        image.bucket = r.GetU32();
        image.version = r.GetU32();
        uint32_t nslots = r.GetU32();
        OBLADI_RETURN_IF_ERROR(CheckCount(r, nslots, 4));
        image.slots.reserve(nslots);
        for (uint32_t s = 0; s < nslots; ++s) {
          image.slots.push_back(r.GetBytes());
        }
        out->writes.push_back(std::move(image));
      }
      break;
    }
    case MsgType::kTruncateBucket:
      out->bucket = r.GetU32();
      out->keep_from_version = r.GetU32();
      break;
    case MsgType::kTruncateBucketsBatch: {
      uint32_t n = r.GetU32();
      OBLADI_RETURN_IF_ERROR(CheckCount(r, n, 8));
      out->truncates.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        TruncateRef ref;
        ref.bucket = r.GetU32();
        ref.keep_from_version = r.GetU32();
        out->truncates.push_back(ref);
      }
      break;
    }
    case MsgType::kReadPathsXor: {
      out->xor_header_bytes = r.GetU32();
      out->xor_trailer_bytes = r.GetU32();
      if (out->xor_header_bytes > kMaxXorEdgeBytes ||
          out->xor_trailer_bytes > kMaxXorEdgeBytes) {
        return Status::InvalidArgument("xor header/trailer size unreasonable");
      }
      uint32_t n = r.GetU32();
      OBLADI_RETURN_IF_ERROR(CheckCount(r, n, 4));
      out->path_reads.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t nslots = r.GetU32();
        OBLADI_RETURN_IF_ERROR(CheckCount(r, nslots, 12));
        PathSlots path;
        path.slots.reserve(nslots);
        for (uint32_t s = 0; s < nslots; ++s) {
          SlotRef ref;
          ref.bucket = r.GetU32();
          ref.version = r.GetU32();
          ref.slot = r.GetU32();
          path.slots.push_back(ref);
        }
        out->path_reads.push_back(std::move(path));
      }
      break;
    }
    case MsgType::kLogAppend:
    case MsgType::kLogAppendSync:
      out->record = r.GetBytes();
      break;
    case MsgType::kLogTruncate:
      out->lsn = r.GetU64();
      break;
    default:
      break;  // empty body
  }
  return FinishDecode(r);
}

Bytes EncodeResponse(const NetResponse& resp) {
  BinaryWriter w;
  PutHeader(w, MsgType::kResponse, resp.id);
  w.PutU8(static_cast<uint8_t>(resp.code));
  w.PutString(resp.message);
  if (resp.code != StatusCode::kOk) {
    return w.Take();  // failed RPCs carry no result body
  }
  switch (resp.request_type) {
    case MsgType::kReadSlots:
      w.PutU32(static_cast<uint32_t>(resp.reads.size()));
      for (const ReadResult& read : resp.reads) {
        w.PutU8(static_cast<uint8_t>(read.code));
        w.PutString(read.message);
        w.PutBytes(read.payload);
      }
      break;
    case MsgType::kReadPathsXor:
      w.PutU32(static_cast<uint32_t>(resp.xor_reads.size()));
      for (const XorReadResult& read : resp.xor_reads) {
        w.PutU8(static_cast<uint8_t>(read.code));
        w.PutString(read.message);
        w.PutBytes(read.headers);
        w.PutBytes(read.body_xor);
      }
      break;
    case MsgType::kNumBuckets:
    case MsgType::kLogAppend:
    case MsgType::kLogAppendSync:
    case MsgType::kLogNextLsn:
      w.PutU64(resp.u64);
      break;
    case MsgType::kLogReadAll:
      w.PutU32(static_cast<uint32_t>(resp.records.size()));
      for (const Bytes& record : resp.records) {
        w.PutBytes(record);
      }
      break;
    default:
      break;  // status only
  }
  return w.Take();
}

Status PeekHeader(const Bytes& payload, MsgType* type, uint64_t* id) {
  BinaryReader r(payload);
  return GetHeader(r, type, id);
}

Status DecodeResponse(const Bytes& payload, MsgType request_type, NetResponse* out) {
  BinaryReader r(payload);
  *out = NetResponse{};
  out->request_type = request_type;
  MsgType type;
  OBLADI_RETURN_IF_ERROR(GetHeader(r, &type, &out->id));
  if (type != MsgType::kResponse) {
    return Status::InvalidArgument("request frame where a response was expected");
  }
  uint8_t raw_code = r.GetU8();
  out->message = r.GetString();
  if (!r.ok() || !ValidStatusCode(raw_code)) {
    return Status::InvalidArgument("malformed response status");
  }
  out->code = static_cast<StatusCode>(raw_code);
  if (out->code != StatusCode::kOk) {
    return FinishDecode(r);
  }
  switch (request_type) {
    case MsgType::kReadSlots: {
      uint32_t n = r.GetU32();
      OBLADI_RETURN_IF_ERROR(CheckCount(r, n, 9));
      out->reads.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        ReadResult read;
        uint8_t code = r.GetU8();
        read.message = r.GetString();
        read.payload = r.GetBytes();
        if (!ValidStatusCode(code)) {
          return Status::InvalidArgument("malformed read result status");
        }
        read.code = static_cast<StatusCode>(code);
        out->reads.push_back(std::move(read));
      }
      break;
    }
    case MsgType::kReadPathsXor: {
      uint32_t n = r.GetU32();
      OBLADI_RETURN_IF_ERROR(CheckCount(r, n, 13));
      out->xor_reads.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        XorReadResult read;
        uint8_t code = r.GetU8();
        read.message = r.GetString();
        read.headers = r.GetBytes();
        read.body_xor = r.GetBytes();
        if (!ValidStatusCode(code)) {
          return Status::InvalidArgument("malformed xor read result status");
        }
        read.code = static_cast<StatusCode>(code);
        out->xor_reads.push_back(std::move(read));
      }
      break;
    }
    case MsgType::kNumBuckets:
    case MsgType::kLogAppend:
    case MsgType::kLogAppendSync:
    case MsgType::kLogNextLsn:
      out->u64 = r.GetU64();
      break;
    case MsgType::kLogReadAll: {
      uint32_t n = r.GetU32();
      OBLADI_RETURN_IF_ERROR(CheckCount(r, n, 4));
      out->records.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        out->records.push_back(r.GetBytes());
      }
      break;
    }
    default:
      break;
  }
  return FinishDecode(r);
}

}  // namespace obladi
