// Single-threaded epoll readiness loop: the submission/completion split that
// lets one thread drive hundreds of outstanding RPCs over a few sockets
// (TaoStore-style asynchronous remote ORAM).
//
// Connections are non-blocking; the loop owns all socket I/O. Reads are
// reassembled into whole length-prefixed frames (the src/net/wire.h framing)
// and delivered via on_frame; writes go through a per-connection queue that
// the loop drains whenever the socket is writable. SendFrame is callable
// from any thread: it appends to the queue (with an inline fast-path send
// when the queue is empty) and applies *backpressure* — it blocks while the
// queue holds more than write_queue_cap bytes, so a peer that stops reading
// stalls its submitters instead of growing an unbounded buffer.
//
// Handler threading contract: on_frame fires on the loop thread — keep it
// cheap (decode + hand off; never block on the loop thread, it stalls every
// other connection). on_close fires exactly once per connection, on
// whichever thread observes the failure first (loop thread for I/O errors
// and Stop, caller thread for CloseConnection).
//
// io_uring note: this interface (submit frames / complete frames) is
// deliberately backend-neutral; an io_uring implementation would slot in
// behind the same API with zero caller changes (ROADMAP).
#ifndef OBLADI_SRC_NET_EVENT_LOOP_H_
#define OBLADI_SRC_NET_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/net/socket.h"

namespace obladi {

// Queue more than this many bytes on one connection and SendFrame blocks
// until the loop drains below it. Sized to hold a full epoch write-back
// burst without stalling, while still bounding a slow reader's footprint.
inline constexpr size_t kDefaultWriteQueueCapBytes = 64u << 20;

class EventLoop {
 public:
  struct ConnectionHandlers {
    // One complete frame payload (length prefix stripped). Loop thread.
    std::function<void(Bytes)> on_frame;
    // The connection is gone: peer closed, I/O error, protocol violation
    // (oversized frame), CloseConnection, or loop shutdown. Fires exactly
    // once; no on_frame follows it.
    std::function<void(const Status&)> on_close;
  };

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Creates the epoll instance and launches the loop thread.
  Status Start();
  // Idempotent. Closes every connection (on_close fires with Unavailable),
  // unblocks senders, joins the loop thread.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Takes ownership of a connected socket, switches it to non-blocking, and
  // registers it. Returns the connection id used by SendFrame.
  StatusOr<uint64_t> AddConnection(TcpSocket sock, ConnectionHandlers handlers,
                                   size_t max_frame_bytes,
                                   size_t write_queue_cap = kDefaultWriteQueueCapBytes);

  // Queue one wire frame (the 4-byte length prefix is added here). Blocks
  // while the connection's write queue is over its cap; returns Unavailable
  // if the connection is gone or the loop stopped. With allow_block false
  // the frame is queued regardless of the cap — the form the loop thread
  // itself must use (heartbeats), since blocking there would deadlock the
  // drain that relieves the backpressure.
  Status SendFrame(uint64_t conn_id, const Bytes& payload, bool allow_block = true);

  // Timer wheel: run `cb` on the loop thread after delay_ms (one-shot).
  // Returns a nonzero timer id, or 0 if the loop is not running. Timers
  // still pending at Stop() are dropped, never fired.
  uint64_t AddTimer(uint64_t delay_ms, std::function<void()> cb);
  // True if the timer was cancelled before firing (false: already fired,
  // currently firing, or unknown).
  bool CancelTimer(uint64_t timer_id);

  // Tear one connection down (its on_close fires with the given status).
  void CloseConnection(uint64_t conn_id, const Status& reason);

  // Bytes currently queued but not yet written (0 if the connection is
  // gone). Test hook for the backpressure contract.
  size_t QueuedBytes(uint64_t conn_id) const;

 private:
  struct Conn {
    TcpSocket sock;
    ConnectionHandlers handlers;
    size_t max_frame_bytes = 0;
    size_t write_queue_cap = 0;

    // Read reassembly (loop thread only).
    Bytes rbuf;

    // Write queue; guarded by mu. Front buffer may be partially sent
    // (woffset into it). dead flips once; the flipping thread runs on_close.
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> wq;
    size_t wq_bytes = 0;
    size_t woffset = 0;
    bool want_write = false;  // EPOLLOUT currently armed
    bool dead = false;
  };

  void LoopThread();
  void HandleReadable(uint64_t id, const std::shared_ptr<Conn>& conn);
  void HandleWritable(uint64_t id, const std::shared_ptr<Conn>& conn);
  // Flush as much of the queue as the socket accepts. Returns false on a
  // fatal socket error. Caller holds conn->mu.
  bool DrainWriteQueueLocked(Conn& conn);
  void UpdateInterestLocked(uint64_t id, Conn& conn);
  // Transition to dead (once), fail blocked senders, deregister, on_close.
  void KillConnection(uint64_t id, const std::shared_ptr<Conn>& conn, const Status& reason);
  std::shared_ptr<Conn> FindConn(uint64_t id) const;
  // Fire every due timer (loop thread); returns the epoll timeout until the
  // next deadline, capped at the idle poll interval.
  int RunDueTimers();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() pokes the loop out of epoll_wait
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex conns_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;

  // Timer wheel (min-heap with lazy deletion: CancelTimer only erases the
  // callback; the heap entry is skipped when it surfaces).
  std::mutex timers_mu_;
  std::atomic<uint64_t> next_timer_id_{1};
  std::priority_queue<std::pair<uint64_t, uint64_t>,
                      std::vector<std::pair<uint64_t, uint64_t>>,
                      std::greater<>> timer_heap_;  // (deadline_us, id)
  std::unordered_map<uint64_t, std::function<void()>> timer_cbs_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_EVENT_LOOP_H_
