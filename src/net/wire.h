// Wire protocol for the proxy <-> cloud-storage network split.
//
// Every message travels as one length-prefixed frame:
//
//   u32 payload_len (LE) | payload
//
// and every payload starts with a fixed header:
//
//   u8 wire_version | u8 msg_type | u64 request_id | body...
//
// Version 2 semantics: a connection is a *multiplexed* request stream. The
// client may have any number of requests outstanding on one connection, the
// server dispatches each frame to its worker pool as it arrives, and
// responses come back in **any order** — `request_id` is the only thing that
// pairs a response with its request (v1 answered strictly in order, which is
// why the id predates the semantics). One event-loop thread on the client
// can therefore drive hundreds of in-flight RPCs over a single socket.
//
// The protocol is natively batched: ReadSlots, WriteBuckets, and
// TruncateBuckets carry N entries and are answered in a single round trip,
// so a batched BucketStore call costs exactly one network round trip
// regardless of batch size — the property the latency decorators simulate
// and the parallel ORAM depends on (§7). Unary calls are batches of one.
//
// Serialization reuses src/common/serde.h. Decoding arbitrary bytes is safe:
// malformed input yields an error status, never UB (net_test fuzzes this).
#ifndef OBLADI_SRC_NET_WIRE_H_
#define OBLADI_SRC_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/bucket_store.h"

namespace obladi {

// v3: server-side XOR path reads (kReadPathsXor — the download for one ORAM
// path read shrinks from (L+1) slot ciphertexts to every slot's nonce/tag
// header plus ONE XORed body) and the fused durable log append
// (kLogAppendSync — append + sync in one round trip).
// v2 introduced out-of-order response multiplexing + kTruncateBucketsBatch.
inline constexpr uint8_t kWireVersion = 3;

// Frames larger than this are a protocol violation (stream desync or garbage)
// and close the connection. Large enough for a full epoch's deferred bucket
// flush on the biggest benchmarked trees.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

// Upper bound on a kReadPathsXor request's per-slot header/trailer split.
// The real users are a 12-byte nonce and a 32-byte MAC tag; anything huge is
// garbage, and rejecting it at decode time keeps untrusted sizes from ever
// reaching an allocation.
inline constexpr uint32_t kMaxXorEdgeBytes = 4096;

enum class MsgType : uint8_t {
  // BucketStore RPCs.
  kReadSlots = 1,       // body: u32 n, n x (u32 bucket, u32 version, u32 slot)
  kWriteBuckets = 2,    // body: u32 n, n x (u32 bucket, u32 version, u32 nslots, nslots x bytes)
  kTruncateBucket = 3,  // body: u32 bucket, u32 keep_from_version
  kNumBuckets = 4,      // body: empty
  // LogStore RPCs.
  kLogAppend = 5,    // body: bytes record
  kLogSync = 6,      // body: empty
  kLogReadAll = 7,   // body: empty
  kLogTruncate = 8,  // body: u64 upto_lsn
  kLogNextLsn = 9,   // body: empty
  // Health check / connection probe.
  kPing = 10,  // body: empty
  // Post-epoch GC for a whole shard in one round trip (v2).
  kTruncateBucketsBatch = 11,  // body: u32 n, n x (u32 bucket, u32 keep_from_version)
  // Server-side XOR path reads (v3). body: u32 header_bytes,
  // u32 trailer_bytes, u32 npaths, npaths x (u32 nslots, nslots x
  // (u32 bucket, u32 version, u32 slot)). Per path the server returns every
  // slot's first header_bytes + last trailer_bytes verbatim and the XOR of
  // the bodies in between.
  kReadPathsXor = 12,
  // Fused durable log append (v3). body: bytes record. Response carries the
  // LSN; the record is synced before the reply, so one round trip makes it
  // durable. At-most-once like kLogAppend: never retried blindly.
  kLogAppendSync = 13,
  // Server -> client. body: u8 status_code, string status_message, then a
  // result body keyed by the request's type (see NetResponse).
  kResponse = 64,
};

const char* MsgTypeName(MsgType type);

// A decoded request. One struct for all message types; only the fields the
// type names are meaningful.
struct NetRequest {
  MsgType type = MsgType::kPing;
  uint64_t id = 0;

  std::vector<SlotRef> reads;          // kReadSlots
  std::vector<BucketImage> writes;     // kWriteBuckets
  BucketIndex bucket = 0;              // kTruncateBucket
  uint32_t keep_from_version = 0;      // kTruncateBucket
  std::vector<TruncateRef> truncates;  // kTruncateBucketsBatch
  Bytes record;                        // kLogAppend, kLogAppendSync
  uint64_t lsn = 0;                    // kLogTruncate
  std::vector<PathSlots> path_reads;   // kReadPathsXor
  uint32_t xor_header_bytes = 0;       // kReadPathsXor
  uint32_t xor_trailer_bytes = 0;      // kReadPathsXor
};

// One entry of a kReadSlots response: a serialized StatusOr<Bytes>.
struct ReadResult {
  StatusCode code = StatusCode::kOk;
  std::string message;
  Bytes payload;  // empty unless code == kOk

  StatusOr<Bytes> ToStatusOr() const {
    if (code == StatusCode::kOk) {
      return payload;
    }
    return Status(code, message);
  }
};

// One entry of a kReadPathsXor response: a serialized
// StatusOr<PathXorResult>.
struct XorReadResult {
  StatusCode code = StatusCode::kOk;
  std::string message;
  Bytes headers;   // empty unless code == kOk
  Bytes body_xor;  // empty unless code == kOk

  StatusOr<PathXorResult> ToStatusOr() const {
    if (code == StatusCode::kOk) {
      return PathXorResult{headers, body_xor};
    }
    return Status(code, message);
  }
};

// A decoded response. `request_type` selects which result fields are live:
//   kReadSlots     -> reads (one entry per requested slot, in request order)
//   kReadPathsXor  -> xor_reads (one entry per requested path)
//   kNumBuckets,
//   kLogAppend,
//   kLogAppendSync,
//   kLogNextLsn    -> u64
//   kLogReadAll    -> records
//   everything else carries only the overall status.
struct NetResponse {
  uint64_t id = 0;
  MsgType request_type = MsgType::kPing;
  StatusCode code = StatusCode::kOk;
  std::string message;

  std::vector<ReadResult> reads;
  std::vector<XorReadResult> xor_reads;
  uint64_t u64 = 0;
  std::vector<Bytes> records;

  Status ToStatus() const {
    if (code == StatusCode::kOk) {
      return Status::Ok();
    }
    return Status(code, message);
  }
  static NetResponse FromStatus(const NetRequest& req, const Status& st) {
    NetResponse resp;
    resp.id = req.id;
    resp.request_type = req.type;
    resp.code = st.code();
    resp.message = st.message();
    return resp;
  }
};

// Encode a message payload (header + body, no frame length prefix — the
// socket layer adds it when sending).
Bytes EncodeRequest(const NetRequest& req);
Bytes EncodeResponse(const NetResponse& resp);

// Decode a received frame payload. Tolerates arbitrary bytes: returns
// InvalidArgument on anything malformed (bad version, unknown type,
// truncated body, trailing garbage, element counts exceeding the payload).
Status DecodeRequest(const Bytes& payload, NetRequest* out);
// Decoding a response needs the originating request's type to know the
// result body's shape.
Status DecodeResponse(const Bytes& payload, MsgType request_type, NetResponse* out);

// Validate only the fixed header of a frame payload and return its type and
// request id. Responses return out of order on a multiplexed connection, so
// the async client must pair a frame with its pending request *before* it
// knows the result body's shape — this is that first look.
Status PeekHeader(const Bytes& payload, MsgType* type, uint64_t* id);

}  // namespace obladi

#endif  // OBLADI_SRC_NET_WIRE_H_
