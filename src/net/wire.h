// Wire protocol for the proxy <-> cloud-storage network split.
//
// Every message travels as one length-prefixed frame:
//
//   u32 payload_len (LE) | payload
//
// and every payload starts with a fixed header:
//
//   u8 wire_version | u8 msg_type | u64 request_id | body...
//
// The protocol is natively batched: ReadSlots and WriteBuckets carry N
// entries and are answered in a single round trip, so a batched BucketStore
// call costs exactly one network round trip regardless of batch size — the
// property the latency decorators simulate and the parallel ORAM depends on
// (§7). Unary calls are batches of one.
//
// Serialization reuses src/common/serde.h. Decoding arbitrary bytes is safe:
// malformed input yields an error status, never UB (net_test fuzzes this).
#ifndef OBLADI_SRC_NET_WIRE_H_
#define OBLADI_SRC_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/storage/bucket_store.h"

namespace obladi {

inline constexpr uint8_t kWireVersion = 1;

// Frames larger than this are a protocol violation (stream desync or garbage)
// and close the connection. Large enough for a full epoch's deferred bucket
// flush on the biggest benchmarked trees.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

enum class MsgType : uint8_t {
  // BucketStore RPCs.
  kReadSlots = 1,       // body: u32 n, n x (u32 bucket, u32 version, u32 slot)
  kWriteBuckets = 2,    // body: u32 n, n x (u32 bucket, u32 version, u32 nslots, nslots x bytes)
  kTruncateBucket = 3,  // body: u32 bucket, u32 keep_from_version
  kNumBuckets = 4,      // body: empty
  // LogStore RPCs.
  kLogAppend = 5,    // body: bytes record
  kLogSync = 6,      // body: empty
  kLogReadAll = 7,   // body: empty
  kLogTruncate = 8,  // body: u64 upto_lsn
  kLogNextLsn = 9,   // body: empty
  // Health check / connection probe.
  kPing = 10,  // body: empty
  // Server -> client. body: u8 status_code, string status_message, then a
  // result body keyed by the request's type (see NetResponse).
  kResponse = 64,
};

const char* MsgTypeName(MsgType type);

// A decoded request. One struct for all message types; only the fields the
// type names are meaningful.
struct NetRequest {
  MsgType type = MsgType::kPing;
  uint64_t id = 0;

  std::vector<SlotRef> reads;        // kReadSlots
  std::vector<BucketImage> writes;   // kWriteBuckets
  BucketIndex bucket = 0;            // kTruncateBucket
  uint32_t keep_from_version = 0;    // kTruncateBucket
  Bytes record;                      // kLogAppend
  uint64_t lsn = 0;                  // kLogTruncate
};

// One entry of a kReadSlots response: a serialized StatusOr<Bytes>.
struct ReadResult {
  StatusCode code = StatusCode::kOk;
  std::string message;
  Bytes payload;  // empty unless code == kOk

  StatusOr<Bytes> ToStatusOr() const {
    if (code == StatusCode::kOk) {
      return payload;
    }
    return Status(code, message);
  }
};

// A decoded response. `request_type` selects which result fields are live:
//   kReadSlots     -> reads (one entry per requested slot, in request order)
//   kNumBuckets,
//   kLogAppend,
//   kLogNextLsn    -> u64
//   kLogReadAll    -> records
//   everything else carries only the overall status.
struct NetResponse {
  uint64_t id = 0;
  MsgType request_type = MsgType::kPing;
  StatusCode code = StatusCode::kOk;
  std::string message;

  std::vector<ReadResult> reads;
  uint64_t u64 = 0;
  std::vector<Bytes> records;

  Status ToStatus() const {
    if (code == StatusCode::kOk) {
      return Status::Ok();
    }
    return Status(code, message);
  }
  static NetResponse FromStatus(const NetRequest& req, const Status& st) {
    NetResponse resp;
    resp.id = req.id;
    resp.request_type = req.type;
    resp.code = st.code();
    resp.message = st.message();
    return resp;
  }
};

// Encode a message payload (header + body, no frame length prefix — the
// socket layer adds it when sending).
Bytes EncodeRequest(const NetRequest& req);
Bytes EncodeResponse(const NetResponse& resp);

// Decode a received frame payload. Tolerates arbitrary bytes: returns
// InvalidArgument on anything malformed (bad version, unknown type,
// truncated body, trailing garbage, element counts exceeding the payload).
Status DecodeRequest(const Bytes& payload, NetRequest* out);
// Decoding a response needs the originating request's type to know the
// result body's shape.
Status DecodeResponse(const Bytes& payload, MsgType request_type, NetResponse* out);

}  // namespace obladi

#endif  // OBLADI_SRC_NET_WIRE_H_
