// Asynchronous request-id-multiplexed RPC client: the wire-v2 counterpart of
// NetClient's blocking connection pool.
//
// Where NetClient pins one blocked thread to one connection per in-flight
// RPC (overlap capped at pool_size), AsyncNetClient separates submission
// from completion: Submit() encodes the request, queues it on one of a few
// multiplexed connections, and returns immediately with a future; a single
// epoll event-loop thread (src/net/event_loop.h) moves all the bytes and
// pairs each returning frame with its pending request by id — responses may
// arrive in any order. Hundreds of RPCs can be outstanding with zero
// dedicated threads, which is what lets the epoch pipeline overlap whole
// batches across shards instead of serializing on pool checkout.
//
// Failure model: a connection loss fails every RPC pending on it *fast*
// (completions fire with Unavailable the moment the loop observes the
// error; nothing waits for a timeout), and the slot redials on the next
// submission. Call() retries idempotent requests once across a redial —
// except kLogAppend, which stays at-most-once: the server may have appended
// and died before answering, and a blind resend would duplicate the WAL
// record.
#ifndef OBLADI_SRC_NET_ASYNC_CLIENT_H_
#define OBLADI_SRC_NET_ASYNC_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/wire.h"
#include "src/storage/latency_store.h"

namespace obladi {

// Call()-path retry policy: exponential backoff with jitter, a retry budget
// (token bucket) so a storm of failures cannot double traffic, and a
// per-node circuit breaker that fails fast while the node looks dead and
// probes it half-open after a cool-down. kLogAppend / kLogAppendSync are
// NEVER retried regardless of policy (at-most-once WAL appends).
struct RetryPolicy {
  // Total attempts per Call (1 = no retry). The historical behavior was one
  // transparent resubmission across a redial, i.e. max_attempts = 2.
  int max_attempts = 2;
  uint64_t initial_backoff_us = 500;
  uint64_t max_backoff_us = 50000;
  // Uniform jitter fraction applied to each backoff (0.5 = +/-50%).
  double jitter = 0.5;
  // Token bucket: every Call earns retry_budget_ratio tokens (capped); each
  // retry spends one. Bounds retry amplification under sustained failure.
  double retry_budget_ratio = 0.2;
  double retry_budget_cap = 10.0;
  // Consecutive Call-path transport failures before the breaker opens.
  // 0 disables the breaker.
  int breaker_failure_threshold = 5;
  // Open duration before a single half-open probe is let through.
  uint64_t breaker_open_ms = 200;
  uint64_t seed = 0x0b1ad1;  // jitter RNG (deterministic per client)
};

struct AsyncClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Multiplexed sockets. One already sustains hundreds of outstanding
  // requests; a second mainly buys head-of-line relief for huge frames.
  size_t num_connections = 1;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Per-connection send-queue cap (bytes); submitters block above it.
  size_t write_queue_cap = kDefaultWriteQueueCapBytes;
  // Default per-request deadline (0 = none). An expired request completes
  // with kDeadlineExceeded and its connection is torn down + redialed, so a
  // straggler reply can never poison the socket.
  uint64_t default_deadline_ms = 0;
  // Application-level heartbeat pings (0 = off): every interval each
  // connected slot is pinged with a deadline of heartbeat_timeout_ms; an
  // expired ping tears the (half-open) connection down.
  uint64_t heartbeat_interval_ms = 0;
  uint64_t heartbeat_timeout_ms = 1000;
  RetryPolicy retry;
};

// Completion handle for one submitted request.
class NetFuture {
 public:
  NetFuture();

  // Blocks until the response or transport failure lands.
  const StatusOr<NetResponse>& Wait() const;
  StatusOr<NetResponse> Take();  // Wait + move out
  bool Ready() const;

 private:
  friend class AsyncNetClient;
  struct State {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    bool done = false;
    StatusOr<NetResponse> result;
    State() : result(Status::Internal("pending")) {}
  };
  std::shared_ptr<State> state_;
};

// Drains completions in *arrival* order, whatever order requests were
// submitted in — the client-side analogue of an io_uring CQ ring. One queue
// may collect completions from many concurrent submitters.
class CompletionQueue {
 public:
  struct Completion {
    uint64_t tag = 0;  // caller-chosen, passed through Submit
    StatusOr<NetResponse> result;
    Completion() : result(Status::Internal("pending")) {}
  };

  // Blocks until one completion is available.
  Completion Next();
  // Blocks until n completions arrived; returns them in arrival order.
  std::vector<Completion> Drain(size_t n);
  size_t ready() const;

 private:
  friend class AsyncNetClient;
  void Push(uint64_t tag, StatusOr<NetResponse> result);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Completion> done_;
};

class AsyncNetClient {
 public:
  // Starts the event loop and verifies the server is reachable with a Ping.
  static StatusOr<std::shared_ptr<AsyncNetClient>> Connect(AsyncClientOptions options);

  explicit AsyncNetClient(AsyncClientOptions options);
  ~AsyncNetClient();

  AsyncNetClient(const AsyncNetClient&) = delete;
  AsyncNetClient& operator=(const AsyncNetClient&) = delete;

  Status Start();

  // Per-request deadline sentinel: "use options().default_deadline_ms".
  static constexpr uint64_t kUseDefaultDeadline = ~0ull;

  // Queue one request (fills req.id) and return its completion handle.
  // Submission blocks only on write-queue backpressure, never on the
  // response. The future completes from the event-loop thread. deadline_ms
  // overrides the client default (0 = no deadline for this request).
  NetFuture Submit(NetRequest req, uint64_t deadline_ms = kUseDefaultDeadline);
  // Completion-queue form: the result lands in `cq` tagged with `tag`.
  void Submit(NetRequest req, CompletionQueue* cq, uint64_t tag,
              uint64_t deadline_ms = kUseDefaultDeadline);
  // Callback form: `done` fires on the event-loop thread (or inline on a
  // submission failure). Keep it cheap; hand heavy work to a pool.
  using ResponseCallback = std::function<void(StatusOr<NetResponse>)>;
  void Submit(NetRequest req, ResponseCallback done,
              uint64_t deadline_ms = kUseDefaultDeadline);

  // Blocking convenience: Submit + Wait under the retry policy — exponential
  // backoff + jitter, retry budget, circuit breaker. Transport failures
  // (kUnavailable, kDeadlineExceeded) on idempotent types resubmit across a
  // redial up to retry.max_attempts; kLogAppend / kLogAppendSync stay
  // at-most-once. While the breaker is open, fails fast with Unavailable.
  StatusOr<NetResponse> Call(NetRequest req,
                             uint64_t deadline_ms = kUseDefaultDeadline);

  NetworkStats& stats() { return stats_; }
  const AsyncClientOptions& options() const { return options_; }

 private:
  // One multiplexed connection slot. generation increments per dial so
  // completions of a lost connection never touch its successor's pendings.
  struct Slot {
    std::mutex mu;
    uint64_t conn_id = 0;  // 0 = not connected
    uint64_t generation = 0;
    bool ever_connected = false;
  };
  struct Pending {
    MsgType type = MsgType::kPing;
    size_t slot = 0;
    uint64_t generation = 0;
    uint64_t submit_ns = 0;  // 0 unless the tracer was enabled at submit
    uint64_t deadline_ms = 0;      // resolved per-request deadline (0 = none)
    uint64_t deadline_timer = 0;   // loop timer id (0 = none armed)
    bool heartbeat = false;        // internal ping; failures count separately
    // Exactly one of fut / cq / callback is set (heartbeats set none).
    std::shared_ptr<NetFuture::State> fut;
    CompletionQueue* cq = nullptr;
    uint64_t tag = 0;
    ResponseCallback callback;
  };

  // force_slot pins the request to one connection slot (heartbeats);
  // allow_block=false skips write-queue backpressure, required when the
  // caller IS the event-loop thread (blocking there would deadlock the
  // drain).
  void SubmitEncoded(MsgType type, uint64_t id, const Bytes& payload, Pending p,
                     const size_t* force_slot = nullptr, bool allow_block = true);
  uint64_t ResolveDeadline(uint64_t deadline_ms) const {
    return deadline_ms == kUseDefaultDeadline ? options_.default_deadline_ms : deadline_ms;
  }
  // Deadline timer fired for request `id`: complete it with
  // kDeadlineExceeded and tear its connection down (loop thread).
  void OnDeadline(uint64_t id);
  // Heartbeat machinery (loop thread). Each tick pings every connected slot
  // with a deadline and re-arms itself.
  void ArmHeartbeat();
  void HeartbeatTick();
  // Circuit breaker (Call path). Allow returns false while open; Record
  // feeds attempt outcomes back.
  bool BreakerAllow();
  void BreakerRecord(bool success);
  // Retry budget: true if a retry token is available (and spends it).
  bool SpendRetryToken();
  uint64_t BackoffWithJitterUs(int attempt);
  // Dial slot `s` if it has no live connection. Caller holds slot.mu.
  Status EnsureConnectedLocked(size_t s, Slot& slot);
  void OnFrame(size_t s, uint64_t generation, Bytes payload);
  void OnClose(size_t s, uint64_t generation, const Status& reason);
  // Remove-and-complete: whoever erases the pending entry completes it.
  void Complete(Pending&& p, StatusOr<NetResponse> result);
  void FailPendingsOf(size_t s, uint64_t generation, const Status& reason);

  AsyncClientOptions options_;
  EventLoop loop_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> next_slot_{0};
  // RPCs submitted but not yet completed (every Pending passes through
  // Complete exactly once, so the pair balances on all paths).
  std::atomic<uint64_t> inflight_{0};
  NetworkStats stats_;

  std::vector<std::unique_ptr<Slot>> slots_;

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Pending> pending_;

  // Retry/breaker state (Call path). Guarded by policy_mu_.
  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  std::mutex policy_mu_;
  BreakerState breaker_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  uint64_t breaker_opened_us_ = 0;
  bool probe_inflight_ = false;
  double retry_tokens_ = 0;
  std::mt19937_64 jitter_rng_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_ASYNC_CLIENT_H_
