// Asynchronous request-id-multiplexed RPC client: the wire-v2 counterpart of
// NetClient's blocking connection pool.
//
// Where NetClient pins one blocked thread to one connection per in-flight
// RPC (overlap capped at pool_size), AsyncNetClient separates submission
// from completion: Submit() encodes the request, queues it on one of a few
// multiplexed connections, and returns immediately with a future; a single
// epoll event-loop thread (src/net/event_loop.h) moves all the bytes and
// pairs each returning frame with its pending request by id — responses may
// arrive in any order. Hundreds of RPCs can be outstanding with zero
// dedicated threads, which is what lets the epoch pipeline overlap whole
// batches across shards instead of serializing on pool checkout.
//
// Failure model: a connection loss fails every RPC pending on it *fast*
// (completions fire with Unavailable the moment the loop observes the
// error; nothing waits for a timeout), and the slot redials on the next
// submission. Call() retries idempotent requests once across a redial —
// except kLogAppend, which stays at-most-once: the server may have appended
// and died before answering, and a blind resend would duplicate the WAL
// record.
#ifndef OBLADI_SRC_NET_ASYNC_CLIENT_H_
#define OBLADI_SRC_NET_ASYNC_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/wire.h"
#include "src/storage/latency_store.h"

namespace obladi {

struct AsyncClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Multiplexed sockets. One already sustains hundreds of outstanding
  // requests; a second mainly buys head-of-line relief for huge frames.
  size_t num_connections = 1;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Per-connection send-queue cap (bytes); submitters block above it.
  size_t write_queue_cap = kDefaultWriteQueueCapBytes;
};

// Completion handle for one submitted request.
class NetFuture {
 public:
  NetFuture();

  // Blocks until the response or transport failure lands.
  const StatusOr<NetResponse>& Wait() const;
  StatusOr<NetResponse> Take();  // Wait + move out
  bool Ready() const;

 private:
  friend class AsyncNetClient;
  struct State {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    bool done = false;
    StatusOr<NetResponse> result;
    State() : result(Status::Internal("pending")) {}
  };
  std::shared_ptr<State> state_;
};

// Drains completions in *arrival* order, whatever order requests were
// submitted in — the client-side analogue of an io_uring CQ ring. One queue
// may collect completions from many concurrent submitters.
class CompletionQueue {
 public:
  struct Completion {
    uint64_t tag = 0;  // caller-chosen, passed through Submit
    StatusOr<NetResponse> result;
    Completion() : result(Status::Internal("pending")) {}
  };

  // Blocks until one completion is available.
  Completion Next();
  // Blocks until n completions arrived; returns them in arrival order.
  std::vector<Completion> Drain(size_t n);
  size_t ready() const;

 private:
  friend class AsyncNetClient;
  void Push(uint64_t tag, StatusOr<NetResponse> result);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Completion> done_;
};

class AsyncNetClient {
 public:
  // Starts the event loop and verifies the server is reachable with a Ping.
  static StatusOr<std::shared_ptr<AsyncNetClient>> Connect(AsyncClientOptions options);

  explicit AsyncNetClient(AsyncClientOptions options);
  ~AsyncNetClient();

  AsyncNetClient(const AsyncNetClient&) = delete;
  AsyncNetClient& operator=(const AsyncNetClient&) = delete;

  Status Start();

  // Queue one request (fills req.id) and return its completion handle.
  // Submission blocks only on write-queue backpressure, never on the
  // response. The future completes from the event-loop thread.
  NetFuture Submit(NetRequest req);
  // Completion-queue form: the result lands in `cq` tagged with `tag`.
  void Submit(NetRequest req, CompletionQueue* cq, uint64_t tag);
  // Callback form: `done` fires on the event-loop thread (or inline on a
  // submission failure). Keep it cheap; hand heavy work to a pool.
  using ResponseCallback = std::function<void(StatusOr<NetResponse>)>;
  void Submit(NetRequest req, ResponseCallback done);

  // Blocking convenience: Submit + Wait, with a single transparent
  // resubmission across a redial for idempotent types (never kLogAppend).
  StatusOr<NetResponse> Call(NetRequest req);

  NetworkStats& stats() { return stats_; }
  const AsyncClientOptions& options() const { return options_; }

 private:
  // One multiplexed connection slot. generation increments per dial so
  // completions of a lost connection never touch its successor's pendings.
  struct Slot {
    std::mutex mu;
    uint64_t conn_id = 0;  // 0 = not connected
    uint64_t generation = 0;
    bool ever_connected = false;
  };
  struct Pending {
    MsgType type = MsgType::kPing;
    size_t slot = 0;
    uint64_t generation = 0;
    uint64_t submit_ns = 0;  // 0 unless the tracer was enabled at submit
    // Exactly one of fut / cq / callback is set.
    std::shared_ptr<NetFuture::State> fut;
    CompletionQueue* cq = nullptr;
    uint64_t tag = 0;
    ResponseCallback callback;
  };

  void SubmitEncoded(MsgType type, uint64_t id, const Bytes& payload, Pending p);
  // Dial slot `s` if it has no live connection. Caller holds slot.mu.
  Status EnsureConnectedLocked(size_t s, Slot& slot);
  void OnFrame(size_t s, uint64_t generation, Bytes payload);
  void OnClose(size_t s, uint64_t generation, const Status& reason);
  // Remove-and-complete: whoever erases the pending entry completes it.
  void Complete(Pending&& p, StatusOr<NetResponse> result);
  void FailPendingsOf(size_t s, uint64_t generation, const Status& reason);

  AsyncClientOptions options_;
  EventLoop loop_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> next_slot_{0};
  // RPCs submitted but not yet completed (every Pending passes through
  // Complete exactly once, so the pair balances on all paths).
  std::atomic<uint64_t> inflight_{0};
  NetworkStats stats_;

  std::vector<std::unique_ptr<Slot>> slots_;

  std::mutex pending_mu_;
  std::unordered_map<uint64_t, Pending> pending_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_ASYNC_CLIENT_H_
