#include "src/net/remote_store.h"

#include <utility>

namespace obladi {

NetClient::NetClient(RemoteStoreOptions options) : options_(std::move(options)) {
  conns_.resize(options_.pool_size == 0 ? 1 : options_.pool_size);
}

StatusOr<std::shared_ptr<NetClient>> NetClient::Connect(RemoteStoreOptions options) {
  auto client = std::make_shared<NetClient>(std::move(options));
  NetRequest ping;
  ping.type = MsgType::kPing;
  auto resp = client->Call(ping);
  if (!resp.ok()) {
    return resp.status();
  }
  Status st = resp->ToStatus();
  if (!st.ok()) {
    return st;
  }
  return client;
}

size_t NetClient::AcquireConn() {
  std::unique_lock<std::mutex> lk(pool_mu_);
  while (true) {
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (!conns_[i].busy) {
        conns_[i].busy = true;
        return i;
      }
    }
    pool_cv_.wait(lk);
  }
}

void NetClient::ReleaseConn(size_t index) {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    conns_[index].busy = false;
  }
  pool_cv_.notify_one();
}

StatusOr<NetResponse> NetClient::Exchange(size_t index, const NetRequest& req,
                                          const Bytes& payload) {
  // The slot is marked busy, so only this thread touches conns_[index].sock.
  Conn& conn = conns_[index];
  if (!conn.sock.valid()) {
    auto sock = TcpSocket::Connect(options_.host, options_.port);
    if (!sock.ok()) {
      return sock.status();
    }
    conn.sock = std::move(*sock);
    if (conn.ever_connected) {
      stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
    }
    conn.ever_connected = true;
  }
  Status sent = conn.sock.SendFrame(payload, options_.max_frame_bytes);
  if (!sent.ok()) {
    conn.sock.Close();
    return sent;
  }
  stats_.bytes_sent.fetch_add(payload.size() + 4, std::memory_order_relaxed);
  auto frame = conn.sock.RecvFrame(options_.max_frame_bytes);
  if (!frame.ok()) {
    conn.sock.Close();
    return frame.status();
  }
  stats_.bytes_received.fetch_add(frame->size() + 4, std::memory_order_relaxed);
  NetResponse resp;
  Status decoded = DecodeResponse(*frame, req.type, &resp);
  if (!decoded.ok()) {
    conn.sock.Close();  // stream can no longer be trusted
    return decoded;
  }
  if (resp.id != req.id) {
    conn.sock.Close();
    return Status::Internal("response id mismatch (connection desynced)");
  }
  return resp;
}

StatusOr<NetResponse> NetClient::Call(NetRequest req) {
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Bytes payload = EncodeRequest(req);
  size_t index = AcquireConn();
  auto resp = Exchange(index, req, payload);
  if (!resp.ok() && resp.status().code() == StatusCode::kUnavailable &&
      req.type != MsgType::kLogAppend && req.type != MsgType::kLogAppendSync) {
    // The connection may simply be stale (server restarted); dial fresh and
    // retry once. Every request type is idempotent (reads, versioned bucket
    // writes, truncations, sync) EXCEPT the log appends (fused or not): the
    // server may have appended the record and died before responding, and a
    // blind resend would duplicate it in the WAL. Appends are therefore
    // at-most-once; a failed append surfaces Unavailable and the recovery
    // protocol decides.
    resp = Exchange(index, req, payload);
  }
  ReleaseConn(index);
  if (resp.ok()) {
    stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  }
  return resp;
}

namespace {

// Converts an RPC-level failure or a server-reported error to Status.
Status OverallStatus(const StatusOr<NetResponse>& resp) {
  if (!resp.ok()) {
    return resp.status();
  }
  return resp->ToStatus();
}

// Unpack a kReadSlots response into per-slot results, charging stats for the
// payload bytes. Shared by the blocking and async read paths.
std::vector<StatusOr<Bytes>> UnpackReads(StatusOr<NetResponse> resp, size_t expected,
                                         NetworkStats& stats) {
  Status st = OverallStatus(resp);
  std::vector<StatusOr<Bytes>> out;
  out.reserve(expected);
  if (!st.ok() || resp->reads.size() != expected) {
    if (st.ok()) {
      st = Status::Internal("server returned wrong read count");
    }
    for (size_t i = 0; i < expected; ++i) {
      out.push_back(st);
    }
    return out;
  }
  stats.reads.fetch_add(expected, std::memory_order_relaxed);
  for (ReadResult& read : resp->reads) {
    if (read.code == StatusCode::kOk) {
      stats.bytes_read.fetch_add(read.payload.size(), std::memory_order_relaxed);
      out.push_back(std::move(read.payload));
    } else {
      out.push_back(Status(read.code, std::move(read.message)));
    }
  }
  return out;
}

// Per-path slot counts: all the request shape the reply validation needs
// (cheaper to retain across the round trip than a copy of every slot ref).
std::vector<uint32_t> PathSlotCounts(const std::vector<PathSlots>& paths) {
  std::vector<uint32_t> counts;
  counts.reserve(paths.size());
  for (const PathSlots& path : paths) {
    counts.push_back(static_cast<uint32_t>(path.slots.size()));
  }
  return counts;
}

// Unpack a kReadPathsXor response into per-path results, validating that the
// server's reply matches the request's shape: the path count must agree and
// every successful path must carry exactly nslots * (header + trailer) header
// bytes. Shared by the blocking and async XOR read paths.
std::vector<StatusOr<PathXorResult>> UnpackXorReads(StatusOr<NetResponse> resp,
                                                    const std::vector<uint32_t>& slot_counts,
                                                    uint32_t header_bytes,
                                                    uint32_t trailer_bytes,
                                                    NetworkStats& stats) {
  Status st = OverallStatus(resp);
  std::vector<StatusOr<PathXorResult>> out;
  out.reserve(slot_counts.size());
  if (!st.ok() || resp->xor_reads.size() != slot_counts.size()) {
    if (st.ok()) {
      st = Status::IntegrityViolation("server returned wrong xor path count");
    }
    for (size_t i = 0; i < slot_counts.size(); ++i) {
      out.push_back(st);
    }
    return out;
  }
  size_t edge = static_cast<size_t>(header_bytes) + trailer_bytes;
  for (size_t i = 0; i < slot_counts.size(); ++i) {
    XorReadResult& read = resp->xor_reads[i];
    if (read.code != StatusCode::kOk) {
      out.push_back(Status(read.code, std::move(read.message)));
      continue;
    }
    if (read.headers.size() != slot_counts[i] * edge) {
      out.push_back(Status::IntegrityViolation("xor reply headers have wrong size"));
      continue;
    }
    stats.reads.fetch_add(slot_counts[i], std::memory_order_relaxed);
    stats.bytes_read.fetch_add(read.headers.size() + read.body_xor.size(),
                               std::memory_order_relaxed);
    out.push_back(PathXorResult{std::move(read.headers), std::move(read.body_xor)});
  }
  return out;
}

}  // namespace

// --- RemoteBucketStore ------------------------------------------------------

StatusOr<std::unique_ptr<RemoteBucketStore>> RemoteBucketStore::Connect(
    RemoteStoreOptions options) {
  auto client = AsyncNetClient::Connect(options.ToAsyncOptions());
  if (!client.ok()) {
    return client.status();
  }
  NetRequest req;
  req.type = MsgType::kNumBuckets;
  auto resp = (*client)->Call(std::move(req));
  Status st = OverallStatus(resp);
  if (!st.ok()) {
    return st;
  }
  return std::make_unique<RemoteBucketStore>(*client, static_cast<size_t>(resp->u64));
}

StatusOr<Bytes> RemoteBucketStore::ReadSlot(BucketIndex bucket, uint32_t version,
                                            SlotIndex slot) {
  auto results = ReadSlotsBatch({SlotRef{bucket, version, slot}});
  return std::move(results[0]);
}

std::vector<StatusOr<Bytes>> RemoteBucketStore::ReadSlotsBatch(
    const std::vector<SlotRef>& refs) {
  NetRequest req;
  req.type = MsgType::kReadSlots;
  req.reads = refs;
  return UnpackReads(client_->Call(std::move(req)), refs.size(), client_->stats());
}

void RemoteBucketStore::ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) {
  size_t n = refs.size();
  NetRequest req;
  req.type = MsgType::kReadSlots;
  req.reads = std::move(refs);
  client_->Submit(std::move(req),
                  [this, n, done = std::move(done)](StatusOr<NetResponse> resp) {
                    done(UnpackReads(std::move(resp), n, client_->stats()));
                  });
}

std::vector<StatusOr<PathXorResult>> RemoteBucketStore::ReadPathsXor(
    const std::vector<PathSlots>& paths, uint32_t header_bytes, uint32_t trailer_bytes) {
  std::vector<uint32_t> counts = PathSlotCounts(paths);
  NetRequest req;
  req.type = MsgType::kReadPathsXor;
  req.path_reads = paths;
  req.xor_header_bytes = header_bytes;
  req.xor_trailer_bytes = trailer_bytes;
  return UnpackXorReads(client_->Call(std::move(req)), counts, header_bytes, trailer_bytes,
                        client_->stats());
}

void RemoteBucketStore::ReadPathsXorAsync(std::vector<PathSlots> paths, uint32_t header_bytes,
                                          uint32_t trailer_bytes, ReadPathsXorDone done) {
  auto counts = std::make_shared<std::vector<uint32_t>>(PathSlotCounts(paths));
  NetRequest req;
  req.type = MsgType::kReadPathsXor;
  req.path_reads = std::move(paths);
  req.xor_header_bytes = header_bytes;
  req.xor_trailer_bytes = trailer_bytes;
  client_->Submit(std::move(req), [this, counts, header_bytes, trailer_bytes,
                                   done = std::move(done)](StatusOr<NetResponse> resp) {
    done(UnpackXorReads(std::move(resp), *counts, header_bytes, trailer_bytes,
                        client_->stats()));
  });
}

Status RemoteBucketStore::WriteBucket(BucketIndex bucket, uint32_t version,
                                      std::vector<Bytes> slots) {
  std::vector<BucketImage> images(1);
  images[0].bucket = bucket;
  images[0].version = version;
  images[0].slots = std::move(slots);
  return WriteBucketsBatch(std::move(images));
}

Status RemoteBucketStore::WriteBucketsBatch(std::vector<BucketImage> images) {
  size_t n = images.size();
  size_t bytes = 0;
  for (const BucketImage& image : images) {
    for (const Bytes& slot : image.slots) {
      bytes += slot.size();
    }
  }
  NetRequest req;
  req.type = MsgType::kWriteBuckets;
  req.writes = std::move(images);
  auto resp = client_->Call(std::move(req));
  Status st = OverallStatus(resp);
  if (st.ok()) {
    NetworkStats& stats = client_->stats();
    stats.writes.fetch_add(n, std::memory_order_relaxed);
    stats.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  }
  return st;
}

void RemoteBucketStore::WriteBucketsBatchAsync(std::vector<BucketImage> images,
                                               WriteBucketsDone done) {
  size_t n = images.size();
  size_t bytes = 0;
  for (const BucketImage& image : images) {
    for (const Bytes& slot : image.slots) {
      bytes += slot.size();
    }
  }
  NetRequest req;
  req.type = MsgType::kWriteBuckets;
  req.writes = std::move(images);
  client_->Submit(std::move(req),
                  [this, n, bytes, done = std::move(done)](StatusOr<NetResponse> resp) {
                    Status st = OverallStatus(resp);
                    if (st.ok()) {
                      NetworkStats& stats = client_->stats();
                      stats.writes.fetch_add(n, std::memory_order_relaxed);
                      stats.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
                    }
                    done(st);
                  });
}

Status RemoteBucketStore::TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) {
  NetRequest req;
  req.type = MsgType::kTruncateBucket;
  req.bucket = bucket;
  req.keep_from_version = keep_from_version;
  return OverallStatus(client_->Call(std::move(req)));
}

Status RemoteBucketStore::TruncateBucketsBatch(const std::vector<TruncateRef>& refs) {
  if (refs.empty()) {
    return Status::Ok();
  }
  NetRequest req;
  req.type = MsgType::kTruncateBucketsBatch;
  req.truncates = refs;
  return OverallStatus(client_->Call(std::move(req)));
}

// --- RemoteLogStore ---------------------------------------------------------

StatusOr<std::unique_ptr<RemoteLogStore>> RemoteLogStore::Connect(
    RemoteStoreOptions options) {
  auto client = AsyncNetClient::Connect(options.ToAsyncOptions());
  if (!client.ok()) {
    return client.status();
  }
  return std::make_unique<RemoteLogStore>(*client);
}

StatusOr<uint64_t> RemoteLogStore::Append(Bytes record) {
  size_t bytes = record.size();
  NetRequest req;
  req.type = MsgType::kLogAppend;
  req.record = std::move(record);
  auto resp = client_->Call(std::move(req));
  Status st = OverallStatus(resp);
  if (!st.ok()) {
    return st;
  }
  NetworkStats& stats = client_->stats();
  stats.writes.fetch_add(1, std::memory_order_relaxed);
  stats.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  return resp->u64;
}

Status RemoteLogStore::Sync() {
  NetRequest req;
  req.type = MsgType::kLogSync;
  return OverallStatus(client_->Call(std::move(req)));
}

StatusOr<uint64_t> RemoteLogStore::AppendSync(Bytes record) {
  size_t bytes = record.size();
  NetRequest req;
  req.type = MsgType::kLogAppendSync;
  req.record = std::move(record);
  auto resp = client_->Call(std::move(req));
  Status st = OverallStatus(resp);
  if (!st.ok()) {
    return st;
  }
  NetworkStats& stats = client_->stats();
  stats.writes.fetch_add(1, std::memory_order_relaxed);
  stats.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  return resp->u64;
}

StatusOr<std::vector<Bytes>> RemoteLogStore::ReadAll() {
  NetRequest req;
  req.type = MsgType::kLogReadAll;
  auto resp = client_->Call(std::move(req));
  Status st = OverallStatus(resp);
  if (!st.ok()) {
    return st;
  }
  NetworkStats& stats = client_->stats();
  stats.reads.fetch_add(resp->records.size(), std::memory_order_relaxed);
  for (const Bytes& record : resp->records) {
    stats.bytes_read.fetch_add(record.size(), std::memory_order_relaxed);
  }
  return std::move(resp->records);
}

Status RemoteLogStore::Truncate(uint64_t upto_lsn) {
  NetRequest req;
  req.type = MsgType::kLogTruncate;
  req.lsn = upto_lsn;
  return OverallStatus(client_->Call(std::move(req)));
}

uint64_t RemoteLogStore::NextLsn() const {
  NetRequest req;
  req.type = MsgType::kLogNextLsn;
  auto resp = client_->Call(std::move(req));
  if (!resp.ok() || !resp->ToStatus().ok()) {
    return 0;
  }
  return resp->u64;
}

}  // namespace obladi
