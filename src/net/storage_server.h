// StorageServer: exposes any BucketStore + LogStore backend over TCP.
//
// This is the untrusted half of Obladi's deployment split (§5): the proxy
// process holds all secrets and client state; this server holds only
// ciphertexts and MACed log records, so it can run anywhere cloud storage
// runs. It speaks the src/net/wire.h protocol.
//
// Threading (wire v2, multiplexed): one accept-loop thread; one lightweight
// reader thread per connection that does nothing but reassemble frames and
// hand each decoded request to the shared worker pool; workers execute
// against the backend and reply under a per-connection send lock — in
// completion order, NOT arrival order. A single client connection therefore
// gets up to num_workers-way request overlap, which is what lets one
// event-loop client drive hundreds of outstanding RPCs through one socket.
// Batched ReadSlots / WriteBuckets / TruncateBuckets requests hit the
// backend's batched entry points and are answered in a single round trip.
//
// Stop() (or destruction) shuts down the listener and every live
// connection, drains in-flight requests, then joins all threads; the
// backing stores are untouched, so a new StorageServer over the same stores
// models a storage-node restart — clients reconnect and resume (net_test
// exercises this).
#ifndef OBLADI_SRC_NET_STORAGE_SERVER_H_
#define OBLADI_SRC_NET_STORAGE_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/obs/admin_server.h"
#include "src/obs/metrics.h"
#include "src/storage/bucket_store.h"

namespace obladi {

struct StorageServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port back via port()
  // Max concurrently *executing* requests across all connections (requests
  // beyond this queue in the pool). This bounds backend concurrency, not
  // connection count — one multiplexed connection can keep every worker
  // busy. Provision it to the storage node's parallelism.
  size_t num_workers = 16;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Optional Prometheus scrape listener (GET /metrics): per-op service-time
  // summaries plus the counters in StorageServerStats. Off by default —
  // enabling it adds one histogram record per request served.
  bool admin_listener = false;
  std::string admin_host = "127.0.0.1";
  uint16_t admin_port = 0;  // 0 = ephemeral; read back via admin_port()
};

struct StorageServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_served{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  // Responses that overtook an earlier request's response on the same
  // connection — direct evidence of multiplexed out-of-order completion.
  std::atomic<uint64_t> out_of_order_replies{0};
};

class StorageServer {
 public:
  // `log` may be nullptr: log RPCs then fail with FailedPrecondition
  // (a bucket-only storage node).
  StorageServer(std::shared_ptr<BucketStore> buckets, std::shared_ptr<LogStore> log,
                StorageServerOptions options = {});
  ~StorageServer();

  StorageServer(const StorageServer&) = delete;
  StorageServer& operator=(const StorageServer&) = delete;

  // Bind + listen + launch the accept loop. Fails if the port is taken.
  Status Start();
  // Idempotent. Closes the listener and all live connections, joins all
  // threads. In-flight requests on the client side fail with Unavailable.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return listener_.port(); }
  const StorageServerStats& stats() const { return stats_; }
  // Null/0 unless options.admin_listener is set (and the listener bound).
  MetricsRegistry* metrics() { return metrics_.get(); }
  uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }

 private:
  // Per-connection state shared between the reader thread and the worker
  // tasks serving its requests. Workers reply under send_mu, so responses
  // from concurrent requests interleave whole-frame at a time.
  struct ConnState {
    TcpSocket sock;
    std::mutex send_mu;
    // In-flight request accounting: the reader drains to zero before
    // closing, so a response is never written to a dead socket by surprise.
    std::mutex flight_mu;
    std::condition_variable flight_cv;
    size_t in_flight = 0;
    // Frame arrival order vs. reply order (out_of_order_replies evidence).
    std::atomic<uint64_t> next_seq{0};
    std::atomic<uint64_t> last_replied_seq{0};
  };

  void AcceptLoop();
  void ReadLoop(const std::shared_ptr<ConnState>& conn);
  void ServeRequest(const std::shared_ptr<ConnState>& conn, NetRequest req, uint64_t seq);
  void SendResponse(ConnState& conn, const NetResponse& resp, uint64_t seq);
  NetResponse Handle(NetRequest& req);

  std::shared_ptr<BucketStore> buckets_;
  std::shared_ptr<LogStore> log_;
  StorageServerOptions options_;

  TcpListener listener_;
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<bool> running_{false};

  // Reader threads, one per accepted connection. Finished readers are
  // reaped on the next accept (so a long-lived server does not accumulate
  // one dead thread per connection ever served); the rest join at Stop().
  struct Reader {
    std::thread thread;
    // Set as the reader's last action: joining a done reader is instant.
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex readers_mu_;
  std::vector<Reader> readers_;

  // Live connection fds, tracked so Stop() can unblock their recv()s.
  std::mutex conns_mu_;
  std::unordered_set<int> live_fds_;

  StorageServerStats stats_;

  // Scrape plumbing (admin_listener only). Histogram pointers are stable
  // for the registry's lifetime; indexed by MsgType value for a lock-free
  // per-request lookup.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::array<Histogram*, 16> op_histograms_{};
  std::unique_ptr<AdminServer> admin_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_STORAGE_SERVER_H_
