// StorageServer: exposes any BucketStore + LogStore backend over TCP.
//
// This is the untrusted half of Obladi's deployment split (§5): the proxy
// process holds all secrets and client state; this server holds only
// ciphertexts and MACed log records, so it can run anywhere cloud storage
// runs. It speaks the src/net/wire.h protocol.
//
// Threading: one accept-loop thread hands each accepted connection to a
// fixed worker pool; a worker serves its connection's request/response
// stream until the peer disconnects. A client connection pool of size N
// therefore gets N-way request overlap as long as num_workers >= N (the
// server is the cloud side — provision it wide). Batched ReadSlots /
// WriteBuckets requests hit the backend's batched entry points and are
// answered in a single round trip.
//
// Stop() (or destruction) shuts down the listener and every live
// connection, then joins all threads; the backing stores are untouched, so
// a new StorageServer over the same stores models a storage-node restart —
// clients reconnect and resume (net_test exercises this).
#ifndef OBLADI_SRC_NET_STORAGE_SERVER_H_
#define OBLADI_SRC_NET_STORAGE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "src/common/thread_pool.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/storage/bucket_store.h"

namespace obladi {

struct StorageServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port back via port()
  // Max concurrently served connections. Size this at least as large as the
  // sum of client pool sizes, or overlapping requests queue behind each
  // other at the accept stage.
  size_t num_workers = 16;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

struct StorageServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_served{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
};

class StorageServer {
 public:
  // `log` may be nullptr: log RPCs then fail with FailedPrecondition
  // (a bucket-only storage node).
  StorageServer(std::shared_ptr<BucketStore> buckets, std::shared_ptr<LogStore> log,
                StorageServerOptions options = {});
  ~StorageServer();

  StorageServer(const StorageServer&) = delete;
  StorageServer& operator=(const StorageServer&) = delete;

  // Bind + listen + launch the accept loop. Fails if the port is taken.
  Status Start();
  // Idempotent. Closes the listener and all live connections, joins all
  // threads. In-flight requests on the client side fail with Unavailable.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return listener_.port(); }
  const StorageServerStats& stats() const { return stats_; }

 private:
  void AcceptLoop();
  void ServeConnection(TcpSocket& conn);
  NetResponse Handle(NetRequest& req);

  std::shared_ptr<BucketStore> buckets_;
  std::shared_ptr<LogStore> log_;
  StorageServerOptions options_;

  TcpListener listener_;
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<bool> running_{false};

  // Live connection fds, tracked so Stop() can unblock their recv()s.
  std::mutex conns_mu_;
  std::unordered_set<int> live_fds_;

  StorageServerStats stats_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_STORAGE_SERVER_H_
