// Client half of the proxy <-> cloud-storage split: BucketStore and LogStore
// implementations that speak src/net/wire.h to a StorageServer over TCP.
//
// NetClient owns a pool of `pool_size` connections. Each RPC checks out one
// connection for its full round trip, so up to pool_size requests are
// genuinely in flight at once — the real version of the overlap that
// LatencyBucketStore's calling-thread sleeps simulate, and the knob
// bench_net_storage sweeps. Callers beyond pool_size block until a
// connection frees up, exactly like a blocking HTTP client pool against
// DynamoDB (§11.2).
//
// Failure model: a send/recv failure marks the connection dead; the RPC
// redials once and retries, which makes a storage-node restart invisible to
// the ORAM above as long as the backend state survived (shadow-paged buckets
// + durable log — §8's recovery story). If the redial also fails, the RPC
// returns Unavailable and the proxy's recovery machinery takes over.
//
// The proxy pipeline runs unchanged over these: they are plain BucketStore /
// LogStore implementations, so ObladiStore(cfg, remote_buckets, remote_log)
// is a real two-process deployment.
#ifndef OBLADI_SRC_NET_REMOTE_STORE_H_
#define OBLADI_SRC_NET_REMOTE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/storage/bucket_store.h"
#include "src/storage/latency_store.h"

namespace obladi {

struct RemoteStoreOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Connections in the pool = max overlapping RPCs. Size it to the I/O
  // parallelism above it (the ORAM's io_threads).
  size_t pool_size = 4;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

// Shared RPC transport. Thread-safe; one instance may back a
// RemoteBucketStore and a RemoteLogStore simultaneously (they then share
// the pool, like one storage endpoint serving both tables).
class NetClient {
 public:
  // Verifies the server is reachable with a Ping before returning.
  static StatusOr<std::shared_ptr<NetClient>> Connect(RemoteStoreOptions options);

  // One RPC: check out a connection, send, await the response, check the
  // connection back in. Transport failures redial once, then surface
  // Unavailable. Fills `req.id`.
  StatusOr<NetResponse> Call(NetRequest req);

  NetworkStats& stats() { return stats_; }
  const RemoteStoreOptions& options() const { return options_; }

  explicit NetClient(RemoteStoreOptions options);

 private:
  struct Conn {
    TcpSocket sock;
    bool busy = false;
    // A slot that connected once and lost its socket counts the next
    // successful dial as a reconnect (stats().reconnects).
    bool ever_connected = false;
  };

  // Blocks until a pool slot frees; returns its index.
  size_t AcquireConn();
  void ReleaseConn(size_t index);
  // One send/recv exchange on connection `index`, dialing it first if dead.
  StatusOr<NetResponse> Exchange(size_t index, const NetRequest& req, const Bytes& payload);

  RemoteStoreOptions options_;
  std::atomic<uint64_t> next_id_{1};
  NetworkStats stats_;

  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<Conn> conns_;
};

class RemoteBucketStore : public BucketStore {
 public:
  // Dials the server and fetches num_buckets (cached: the tree's geometry
  // is immutable once deployed).
  static StatusOr<std::unique_ptr<RemoteBucketStore>> Connect(RemoteStoreOptions options);

  RemoteBucketStore(std::shared_ptr<NetClient> client, size_t num_buckets)
      : client_(std::move(client)), num_buckets_(num_buckets) {}

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override;
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override;
  // One round trip for the whole batch — the wire protocol is natively
  // batched, so these do NOT fall back to the unary loop.
  std::vector<StatusOr<Bytes>> ReadSlotsBatch(const std::vector<SlotRef>& refs) override;
  Status WriteBucketsBatch(std::vector<BucketImage> images) override;
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override;
  size_t num_buckets() const override { return num_buckets_; }

  NetworkStats& stats() { return client_->stats(); }
  const std::shared_ptr<NetClient>& client() const { return client_; }

 private:
  std::shared_ptr<NetClient> client_;
  size_t num_buckets_;
};

class RemoteLogStore : public LogStore {
 public:
  static StatusOr<std::unique_ptr<RemoteLogStore>> Connect(RemoteStoreOptions options);

  explicit RemoteLogStore(std::shared_ptr<NetClient> client) : client_(std::move(client)) {}

  StatusOr<uint64_t> Append(Bytes record) override;
  Status Sync() override;
  StatusOr<std::vector<Bytes>> ReadAll() override;
  Status Truncate(uint64_t upto_lsn) override;
  // Interface is const and infallible; this does an RPC and reports 0 if
  // the server is unreachable (callers treat NextLsn as advisory).
  uint64_t NextLsn() const override;

  NetworkStats& stats() { return client_->stats(); }
  const std::shared_ptr<NetClient>& client() const { return client_; }

 private:
  std::shared_ptr<NetClient> client_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_REMOTE_STORE_H_
