// Client half of the proxy <-> cloud-storage split: BucketStore and LogStore
// implementations that speak src/net/wire.h to a StorageServer over TCP.
//
// The remote stores ride on AsyncNetClient (src/net/async_client.h): one
// epoll event-loop thread multiplexes every outstanding RPC over
// `num_connections` sockets, pairing out-of-order responses by request id.
// Submission and completion are decoupled, so the epoch pipeline can keep
// hundreds of slot reads and bucket writes in flight without a thread per
// RPC — the real version of the overlap that LatencyBucketStore's
// calling-thread sleeps simulate, and the lever bench_net_storage sweeps.
// The stores answer SupportsAsyncBatches() and implement the *Async entry
// points as true submissions, which is what the parallel ORAM keys off.
//
// NetClient, the original blocking connection pool (one checked-out
// connection per in-flight RPC, overlap capped at pool_size), is kept as
// the measured baseline: bench_net_storage races the two designs against
// the same 1 ms storage node.
//
// Failure model: a lost connection fails every RPC pending on it fast; the
// synchronous entry points then redial and retry once — except LogAppend,
// which stays at-most-once (the server may have appended before dying; a
// blind resend would duplicate the WAL record). A storage-node restart is
// therefore invisible to the ORAM above as long as the backend state
// survived (shadow-paged buckets + durable log — §8's recovery story).
// Async submissions do NOT retry: epoch-level recovery owns those failures.
#ifndef OBLADI_SRC_NET_REMOTE_STORE_H_
#define OBLADI_SRC_NET_REMOTE_STORE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/async_client.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/storage/bucket_store.h"
#include "src/storage/latency_store.h"

namespace obladi {

struct RemoteStoreOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Multiplexed sockets for the async client (the remote stores). One
  // connection already carries hundreds of outstanding requests.
  size_t num_connections = 1;
  // Pool size for the legacy blocking NetClient = max overlapping RPCs
  // (bench baseline only; the remote stores no longer use it).
  size_t pool_size = 4;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Transport hardening knobs, passed through to AsyncClientOptions: 0
  // keeps the historical no-deadline / no-heartbeat behavior.
  uint64_t default_deadline_ms = 0;
  uint64_t heartbeat_interval_ms = 0;
  uint64_t heartbeat_timeout_ms = 1000;
  RetryPolicy retry;

  AsyncClientOptions ToAsyncOptions() const {
    AsyncClientOptions opts;
    opts.host = host;
    opts.port = port;
    opts.num_connections = num_connections;
    opts.max_frame_bytes = max_frame_bytes;
    opts.default_deadline_ms = default_deadline_ms;
    opts.heartbeat_interval_ms = heartbeat_interval_ms;
    opts.heartbeat_timeout_ms = heartbeat_timeout_ms;
    opts.retry = retry;
    return opts;
  }
};

// Blocking thread-per-RPC transport (pre-async design, kept as the measured
// baseline). Thread-safe; one instance may back several callers.
class NetClient {
 public:
  // Verifies the server is reachable with a Ping before returning.
  static StatusOr<std::shared_ptr<NetClient>> Connect(RemoteStoreOptions options);

  // One RPC: check out a connection, send, await the response, check the
  // connection back in. Callers beyond pool_size block until a connection
  // frees up. Transport failures redial once (never for kLogAppend), then
  // surface Unavailable. Fills `req.id`.
  StatusOr<NetResponse> Call(NetRequest req);

  NetworkStats& stats() { return stats_; }
  const RemoteStoreOptions& options() const { return options_; }

  explicit NetClient(RemoteStoreOptions options);

 private:
  struct Conn {
    TcpSocket sock;
    bool busy = false;
    // A slot that connected once and lost its socket counts the next
    // successful dial as a reconnect (stats().reconnects).
    bool ever_connected = false;
  };

  // Blocks until a pool slot frees; returns its index.
  size_t AcquireConn();
  void ReleaseConn(size_t index);
  // One send/recv exchange on connection `index`, dialing it first if dead.
  StatusOr<NetResponse> Exchange(size_t index, const NetRequest& req, const Bytes& payload);

  RemoteStoreOptions options_;
  std::atomic<uint64_t> next_id_{1};
  NetworkStats stats_;

  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<Conn> conns_;
};

class RemoteBucketStore : public BucketStore {
 public:
  // Dials the server and fetches num_buckets (cached: the tree's geometry
  // is immutable once deployed).
  static StatusOr<std::unique_ptr<RemoteBucketStore>> Connect(RemoteStoreOptions options);

  RemoteBucketStore(std::shared_ptr<AsyncNetClient> client, size_t num_buckets)
      : client_(std::move(client)), num_buckets_(num_buckets) {}

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override;
  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override;
  // One round trip for the whole batch — the wire protocol is natively
  // batched, so these do NOT fall back to the unary loop.
  std::vector<StatusOr<Bytes>> ReadSlotsBatch(const std::vector<SlotRef>& refs) override;
  Status WriteBucketsBatch(std::vector<BucketImage> images) override;
  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override;
  // kTruncateBucketsBatch: a whole epoch's GC in one round trip.
  Status TruncateBucketsBatch(const std::vector<TruncateRef>& refs) override;
  // kReadPathsXor: the real server-side reduction — one round trip whose
  // reply is headers + ONE body per path instead of every slot ciphertext.
  // Reply-shape violations this layer can see (wrong path count, header
  // bytes not matching the request's slot count) fail closed here with
  // IntegrityViolation; body sizing is validated by the ORAM's
  // reconstruction, which knows the ciphertext geometry.
  std::vector<StatusOr<PathXorResult>> ReadPathsXor(const std::vector<PathSlots>& paths,
                                                    uint32_t header_bytes,
                                                    uint32_t trailer_bytes) override;
  size_t num_buckets() const override { return num_buckets_; }

  // True submissions over the event loop: the call returns once the frame
  // is queued; `done` fires from the completion path. No retry — the epoch
  // pipeline's recovery machinery owns async failures.
  bool SupportsAsyncBatches() const override { return true; }
  void ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) override;
  void WriteBucketsBatchAsync(std::vector<BucketImage> images, WriteBucketsDone done) override;
  void ReadPathsXorAsync(std::vector<PathSlots> paths, uint32_t header_bytes,
                         uint32_t trailer_bytes, ReadPathsXorDone done) override;

  NetworkStats& stats() { return client_->stats(); }
  NetworkStats* network_stats() override { return &client_->stats(); }
  const std::shared_ptr<AsyncNetClient>& client() const { return client_; }

 private:
  std::shared_ptr<AsyncNetClient> client_;
  size_t num_buckets_;
};

class RemoteLogStore : public LogStore {
 public:
  static StatusOr<std::unique_ptr<RemoteLogStore>> Connect(RemoteStoreOptions options);

  explicit RemoteLogStore(std::shared_ptr<AsyncNetClient> client)
      : client_(std::move(client)) {}

  StatusOr<uint64_t> Append(Bytes record) override;
  Status Sync() override;
  // kLogAppendSync: append + sync in ONE round trip. At-most-once exactly
  // like Append — a transport failure leaves the record's fate unknown and
  // is never blindly retried.
  StatusOr<uint64_t> AppendSync(Bytes record) override;
  StatusOr<std::vector<Bytes>> ReadAll() override;
  Status Truncate(uint64_t upto_lsn) override;
  // Interface is const and infallible; this does an RPC and reports 0 if
  // the server is unreachable (callers treat NextLsn as advisory).
  uint64_t NextLsn() const override;

  NetworkStats& stats() { return client_->stats(); }
  NetworkStats* network_stats() override { return &client_->stats(); }
  const std::shared_ptr<AsyncNetClient>& client() const { return client_; }

 private:
  std::shared_ptr<AsyncNetClient> client_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_NET_REMOTE_STORE_H_
