#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <limits>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace obladi {
namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

StatusOr<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return addr;
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Kernel-level half-open detection backing up the application heartbeats:
// keepalive probes start after 30 s of silence and give up after 3 misses,
// and TCP_USER_TIMEOUT bounds how long unacked transmit data may sit in the
// send queue before the kernel errors the connection — without it a
// partitioned-but-alive peer leaves a sender blocked until the (15-minute
// scale) retransmission limit.
void SetKeepAlive(int fd) {
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
  int idle = 30;
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  int interval = 5;
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &interval, sizeof(interval));
  int count = 3;
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &count, sizeof(count));
#ifdef TCP_USER_TIMEOUT
  unsigned int user_timeout_ms = 45000;
  setsockopt(fd, IPPROTO_TCP, TCP_USER_TIMEOUT, &user_timeout_ms, sizeof(user_timeout_ms));
#endif
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<TcpSocket> TcpSocket::Connect(const std::string& host, uint16_t port) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) {
    return addr.status();
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  TcpSocket sock(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof(*addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  SetNoDelay(fd);
  SetKeepAlive(fd);
  return sock;
}

Status TcpSocket::SendAll(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::Ok();
}

Status TcpSocket::RecvAll(uint8_t* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t rc = ::recv(fd_, data + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("recv");
    }
    if (rc == 0) {
      return got == 0 ? Status::Unavailable("peer closed")
                      : Status::Unavailable("peer closed mid-frame");
    }
    got += static_cast<size_t>(rc);
  }
  return Status::Ok();
}

Status TcpSocket::SendFrame(const Bytes& payload, size_t max_frame_bytes) {
  if (payload.size() > max_frame_bytes ||
      payload.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("frame of " + std::to_string(payload.size()) +
                                   " bytes exceeds send limit");
  }
  uint8_t len[4];
  uint32_t n = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    len[i] = static_cast<uint8_t>(n >> (8 * i));
  }
  OBLADI_RETURN_IF_ERROR(SendAll(len, sizeof(len)));
  return SendAll(payload.data(), payload.size());
}

StatusOr<Bytes> TcpSocket::RecvFrame(size_t max_frame_bytes) {
  uint8_t len[4];
  OBLADI_RETURN_IF_ERROR(RecvAll(len, sizeof(len)));
  uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<uint32_t>(len[i]) << (8 * i);
  }
  if (n > max_frame_bytes) {
    return Status::InvalidArgument("frame of " + std::to_string(n) +
                                   " bytes exceeds limit of " +
                                   std::to_string(max_frame_bytes));
  }
  Bytes payload(n);
  OBLADI_RETURN_IF_ERROR(RecvAll(payload.data(), payload.size()));
  return payload;
}

void TcpSocket::Shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<TcpListener> TcpListener::Listen(const std::string& host, uint16_t port,
                                          int backlog) {
  auto addr = MakeAddr(host, port);
  if (!addr.ok()) {
    return addr.status();
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  TcpListener listener;
  listener.fd_ = fd;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof(*addr)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    return Errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

StatusOr<TcpSocket> TcpListener::Accept() {
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      SetKeepAlive(fd);
      return TcpSocket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    return Errno("accept");
  }
}

void TcpListener::Shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace obladi
