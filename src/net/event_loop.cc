#include "src/net/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/clock.h"
#include "src/obs/trace.h"

namespace obladi {
namespace {

constexpr uint64_t kWakeToken = ~0ull;  // epoll data value for the eventfd

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl O_NONBLOCK");
  }
  return Status::Ok();
}

// One wire frame as a single contiguous send buffer: length prefix + payload.
Bytes FrameBuffer(const Bytes& payload) {
  Bytes buf;
  buf.reserve(4 + payload.size());
  uint32_t n = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<uint8_t>(n >> (8 * i)));
  }
  buf.insert(buf.end(), payload.begin(), payload.end());
  return buf;
}

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("event loop already running");
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Errno("epoll_create1");
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status st = Errno("eventfd");
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    Status st = Errno("epoll_ctl add wakefd");
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    return st;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { LoopThread(); });
  return Status::Ok();
}

void EventLoop::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) {
    thread_.join();
  }
  // Fail every surviving connection (this also unblocks senders parked on
  // backpressure, who now see dead and return Unavailable).
  std::vector<std::pair<uint64_t, std::shared_ptr<Conn>>> leftover;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    leftover.assign(conns_.begin(), conns_.end());
  }
  for (auto& [id, conn] : leftover) {
    KillConnection(id, conn, Status::Unavailable("event loop stopped"));
  }
  {
    // Pending timers die with the loop (documented: dropped, never fired).
    std::lock_guard<std::mutex> lk(timers_mu_);
    timer_heap_ = {};
    timer_cbs_.clear();
  }
  ::close(wake_fd_);
  ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
}

StatusOr<uint64_t> EventLoop::AddConnection(TcpSocket sock, ConnectionHandlers handlers,
                                            size_t max_frame_bytes, size_t write_queue_cap) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("event loop not running");
  }
  if (!sock.valid()) {
    return Status::InvalidArgument("invalid socket");
  }
  OBLADI_RETURN_IF_ERROR(SetNonBlocking(sock.fd()));

  auto conn = std::make_shared<Conn>();
  conn->sock = std::move(sock);
  conn->handlers = std::move(handlers);
  conn->max_frame_bytes = max_frame_bytes;
  conn->write_queue_cap = write_queue_cap == 0 ? 1 : write_queue_cap;

  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.emplace(id, conn);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->sock.fd(), &ev) < 0) {
    Status st = Errno("epoll_ctl add");
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.erase(id);
    return st;
  }
  return id;
}

std::shared_ptr<EventLoop::Conn> EventLoop::FindConn(uint64_t id) const {
  std::lock_guard<std::mutex> lk(conns_mu_);
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second;
}

Status EventLoop::SendFrame(uint64_t conn_id, const Bytes& payload, bool allow_block) {
  if (payload.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("frame exceeds u32 length prefix");
  }
  std::shared_ptr<Conn> conn = FindConn(conn_id);
  if (conn == nullptr) {
    return Status::Unavailable("connection is gone");
  }
  Bytes buf = FrameBuffer(payload);
  bool fatal = false;
  size_t queued_after = 0;
  {
    std::unique_lock<std::mutex> lk(conn->mu);
    // Backpressure: hold the submitter here until the loop drains the queue
    // below the cap (or the connection dies). A single frame larger than the
    // cap is still accepted — refusing it would deadlock the submitter.
    if (allow_block) {
      conn->cv.wait(lk, [&] { return conn->dead || conn->wq_bytes < conn->write_queue_cap; });
    }
    if (conn->dead) {
      return Status::Unavailable("connection closed");
    }
    if (conn->wq.empty()) {
      // Fast path: the socket is usually writable; push bytes straight from
      // the submitting thread and only queue the remainder. Ordering is safe
      // because the queue is empty and mu is held.
      size_t sent = 0;
      while (sent < buf.size()) {
        ssize_t rc = ::send(conn->sock.fd(), buf.data() + sent, buf.size() - sent,
                            MSG_NOSIGNAL | MSG_DONTWAIT);
        if (rc > 0) {
          sent += static_cast<size_t>(rc);
          continue;
        }
        if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        }
        if (rc < 0 && errno == EINTR) {
          continue;
        }
        fatal = true;
        break;
      }
      if (!fatal && sent < buf.size()) {
        conn->woffset = sent;
        conn->wq_bytes += buf.size() - sent;
        conn->wq.push_back(std::move(buf));
        UpdateInterestLocked(conn_id, *conn);
      }
    } else {
      conn->wq_bytes += buf.size();
      conn->wq.push_back(std::move(buf));
      UpdateInterestLocked(conn_id, *conn);
    }
    queued_after = conn->wq_bytes;
  }
  {
    Tracer& tracer = Tracer::Get();
    if (tracer.enabled()) {
      tracer.RecordCounter("net", "net.queued_bytes", queued_after);
    }
  }
  if (fatal) {
    KillConnection(conn_id, conn, Errno("send"));
    return Status::Unavailable("connection closed");
  }
  return Status::Ok();
}

size_t EventLoop::QueuedBytes(uint64_t conn_id) const {
  std::shared_ptr<Conn> conn = FindConn(conn_id);
  if (conn == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> lk(conn->mu);
  return conn->wq_bytes;
}

void EventLoop::CloseConnection(uint64_t conn_id, const Status& reason) {
  std::shared_ptr<Conn> conn = FindConn(conn_id);
  if (conn != nullptr) {
    KillConnection(conn_id, conn, reason);
  }
}

void EventLoop::UpdateInterestLocked(uint64_t id, Conn& conn) {
  bool want = !conn.wq.empty();
  if (want == conn.want_write || conn.dead) {
    return;
  }
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = id;
  // Arming EPOLLOUT on an already-writable socket wakes a blocked
  // epoll_wait, so the loop picks the queue up without a separate signal.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
}

bool EventLoop::DrainWriteQueueLocked(Conn& conn) {
  while (!conn.wq.empty()) {
    Bytes& front = conn.wq.front();
    ssize_t rc = ::send(conn.sock.fd(), front.data() + conn.woffset,
                        front.size() - conn.woffset, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (rc < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;
      }
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    conn.woffset += static_cast<size_t>(rc);
    conn.wq_bytes -= static_cast<size_t>(rc);
    if (conn.woffset == front.size()) {
      conn.wq.pop_front();
      conn.woffset = 0;
    }
  }
  return true;
}

void EventLoop::HandleWritable(uint64_t id, const std::shared_ptr<Conn>& conn) {
  bool ok;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    ok = DrainWriteQueueLocked(*conn);
    if (ok) {
      UpdateInterestLocked(id, *conn);
      if (conn->wq_bytes < conn->write_queue_cap) {
        conn->cv.notify_all();  // release senders parked on backpressure
      }
    }
  }
  if (!ok) {
    KillConnection(id, conn, Errno("send"));
  }
}

void EventLoop::HandleReadable(uint64_t id, const std::shared_ptr<Conn>& conn) {
  // Read first, deliver second, kill last: a peer that answers and then
  // closes (the server's protocol-error path) must still get its final
  // frame delivered before on_close fires.
  Status close_reason = Status::Ok();
  uint8_t chunk[64 * 1024];
  while (true) {
    ssize_t rc = ::recv(conn->sock.fd(), chunk, sizeof(chunk), MSG_DONTWAIT);
    if (rc > 0) {
      conn->rbuf.insert(conn->rbuf.end(), chunk, chunk + rc);
      if (static_cast<size_t>(rc) < sizeof(chunk)) {
        break;  // drained the socket
      }
      continue;
    }
    if (rc == 0) {
      close_reason = Status::Unavailable("peer closed");
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    close_reason = Errno("recv");
    break;
  }

  // Deliver every complete frame in the reassembly buffer. An on_frame
  // handler may itself close the connection (a desynced client stream);
  // once on_close has fired, no further on_frame may follow — re-check
  // dead between deliveries.
  size_t pos = 0;
  auto is_dead = [&] {
    std::lock_guard<std::mutex> lk(conn->mu);
    return conn->dead;
  };
  while (conn->rbuf.size() - pos >= 4 && !is_dead()) {
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i) {
      n |= static_cast<uint32_t>(conn->rbuf[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    if (n > conn->max_frame_bytes) {
      KillConnection(id, conn,
                     Status::InvalidArgument("frame of " + std::to_string(n) +
                                             " bytes exceeds limit"));
      return;
    }
    if (conn->rbuf.size() - pos - 4 < n) {
      break;  // frame still in flight
    }
    Bytes payload(conn->rbuf.begin() + static_cast<ptrdiff_t>(pos + 4),
                  conn->rbuf.begin() + static_cast<ptrdiff_t>(pos + 4 + n));
    pos += 4 + n;
    if (conn->handlers.on_frame) {
      conn->handlers.on_frame(std::move(payload));
    }
  }
  if (pos > 0) {
    conn->rbuf.erase(conn->rbuf.begin(), conn->rbuf.begin() + static_cast<ptrdiff_t>(pos));
  }
  if (!close_reason.ok()) {
    KillConnection(id, conn, close_reason);
  }
}

void EventLoop::KillConnection(uint64_t id, const std::shared_ptr<Conn>& conn,
                               const Status& reason) {
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->dead) {
      return;  // another thread already ran the teardown
    }
    conn->dead = true;
    conn->cv.notify_all();
  }
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->sock.fd(), nullptr);
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.erase(id);
  }
  if (conn->handlers.on_close) {
    conn->handlers.on_close(reason);
  }
}

uint64_t EventLoop::AddTimer(uint64_t delay_ms, std::function<void()> cb) {
  if (!running_.load(std::memory_order_acquire)) {
    return 0;
  }
  uint64_t id = next_timer_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(timers_mu_);
    timer_heap_.emplace(NowMicros() + delay_ms * 1000, id);
    timer_cbs_.emplace(id, std::move(cb));
  }
  // Wake the loop so its epoll timeout shrinks to the new deadline.
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  return id;
}

bool EventLoop::CancelTimer(uint64_t timer_id) {
  std::lock_guard<std::mutex> lk(timers_mu_);
  return timer_cbs_.erase(timer_id) > 0;
}

int EventLoop::RunDueTimers() {
  constexpr int kIdleTimeoutMs = 200;
  std::vector<std::function<void()>> due;
  int timeout_ms = kIdleTimeoutMs;
  {
    std::lock_guard<std::mutex> lk(timers_mu_);
    uint64_t now = NowMicros();
    while (!timer_heap_.empty()) {
      auto [deadline_us, id] = timer_heap_.top();
      if (deadline_us > now) {
        uint64_t wait_ms = (deadline_us - now + 999) / 1000;
        timeout_ms = static_cast<int>(std::min<uint64_t>(wait_ms, kIdleTimeoutMs));
        break;
      }
      timer_heap_.pop();
      auto it = timer_cbs_.find(id);
      if (it != timer_cbs_.end()) {
        due.push_back(std::move(it->second));
        timer_cbs_.erase(it);
      }
    }
  }
  // Callbacks run outside timers_mu_ so they may add/cancel timers freely.
  for (auto& cb : due) {
    cb();
  }
  return timeout_ms;
}

void EventLoop::LoopThread() {
  Tracer::Get().SetThreadName("net-event-loop");
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    int timeout_ms = RunDueTimers();
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // epoll fd itself failed; Stop() cleans up
    }
    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      if (id == kWakeToken) {
        uint64_t drain;
        (void)!::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      std::shared_ptr<Conn> conn = FindConn(id);
      if (conn == nullptr) {
        continue;  // closed between epoll_wait and now
      }
      uint32_t ev = events[i].events;
      if (ev & (EPOLLHUP | EPOLLERR)) {
        // Let the read path surface the precise error (recv returns it).
        HandleReadable(id, conn);
        continue;
      }
      if (ev & EPOLLOUT) {
        HandleWritable(id, conn);
      }
      if (ev & EPOLLIN) {
        HandleReadable(id, conn);
      }
    }
  }
}

}  // namespace obladi
