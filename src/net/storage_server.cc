#include "src/net/storage_server.h"

#include <sys/socket.h>

#include <utility>

namespace obladi {

StorageServer::StorageServer(std::shared_ptr<BucketStore> buckets,
                             std::shared_ptr<LogStore> log, StorageServerOptions options)
    : buckets_(std::move(buckets)), log_(std::move(log)), options_(std::move(options)) {}

StorageServer::~StorageServer() { Stop(); }

Status StorageServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(*listener);
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void StorageServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  listener_.Shutdown();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // Joins the workers; each exits its serve loop once its connection's
  // recv fails after the shutdown above.
  workers_.reset();
  listener_.Close();
}

void StorageServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      // Stop() shut the listener down, or a transient accept error (e.g.
      // EMFILE under fd exhaustion — back off instead of spinning a core).
      if (running_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    auto shared = std::make_shared<TcpSocket>(std::move(*conn));
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      live_fds_.insert(shared->fd());
    }
    workers_->Enqueue([this, shared] {
      ServeConnection(*shared);
      // Deregister before the socket closes (when `shared` dies) so Stop()
      // never shutdown()s a recycled fd number.
      {
        std::lock_guard<std::mutex> lk(conns_mu_);
        live_fds_.erase(shared->fd());
      }
      shared->Close();
    });
  }
}

void StorageServer::ServeConnection(TcpSocket& conn) {
  while (running_.load(std::memory_order_acquire)) {
    auto frame = conn.RecvFrame(options_.max_frame_bytes);
    if (!frame.ok()) {
      // Clean disconnect, shutdown, or an oversized/garbage frame; either
      // way this connection is done.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    stats_.bytes_received.fetch_add(frame->size() + 4, std::memory_order_relaxed);

    NetRequest req;
    NetResponse resp;
    Status decoded = DecodeRequest(*frame, &req);
    if (!decoded.ok()) {
      // Header (version, type, id) is the first thing decoded; a garbage
      // frame may still yield a usable id, so answer before closing. The
      // stream may be desynced, so do not trust anything after this frame.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      resp = NetResponse::FromStatus(req, decoded);
      Bytes payload = EncodeResponse(resp);
      if (conn.SendFrame(payload, options_.max_frame_bytes).ok()) {
        stats_.bytes_sent.fetch_add(payload.size() + 4, std::memory_order_relaxed);
      }
      return;
    }

    resp = Handle(req);
    stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
    Bytes payload = EncodeResponse(resp);
    if (!conn.SendFrame(payload, options_.max_frame_bytes).ok()) {
      return;
    }
    stats_.bytes_sent.fetch_add(payload.size() + 4, std::memory_order_relaxed);
  }
}

NetResponse StorageServer::Handle(NetRequest& req) {
  NetResponse resp;
  resp.id = req.id;
  resp.request_type = req.type;

  if (req.type >= MsgType::kLogAppend && req.type <= MsgType::kLogNextLsn && !log_) {
    return NetResponse::FromStatus(
        req, Status::FailedPrecondition("no log store attached to this server"));
  }

  switch (req.type) {
    case MsgType::kReadSlots: {
      auto results = buckets_->ReadSlotsBatch(req.reads);
      resp.reads.reserve(results.size());
      for (auto& result : results) {
        ReadResult read;
        if (result.ok()) {
          read.payload = std::move(*result);
        } else {
          read.code = result.status().code();
          read.message = result.status().message();
        }
        resp.reads.push_back(std::move(read));
      }
      break;
    }
    case MsgType::kWriteBuckets: {
      Status st = buckets_->WriteBucketsBatch(std::move(req.writes));
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kTruncateBucket: {
      Status st = buckets_->TruncateBucket(req.bucket, req.keep_from_version);
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kNumBuckets:
      resp.u64 = buckets_->num_buckets();
      break;
    case MsgType::kLogAppend: {
      auto lsn = log_->Append(std::move(req.record));
      if (!lsn.ok()) {
        return NetResponse::FromStatus(req, lsn.status());
      }
      resp.u64 = *lsn;
      break;
    }
    case MsgType::kLogSync: {
      Status st = log_->Sync();
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kLogReadAll: {
      auto records = log_->ReadAll();
      if (!records.ok()) {
        return NetResponse::FromStatus(req, records.status());
      }
      resp.records = std::move(*records);
      break;
    }
    case MsgType::kLogTruncate: {
      Status st = log_->Truncate(req.lsn);
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kLogNextLsn:
      resp.u64 = log_->NextLsn();
      break;
    case MsgType::kPing:
      break;
    case MsgType::kResponse:
      return NetResponse::FromStatus(req, Status::InvalidArgument("response sent as request"));
  }
  return resp;
}

}  // namespace obladi
