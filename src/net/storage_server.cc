#include "src/net/storage_server.h"

#include <sys/socket.h>

#include <cstdio>
#include <utility>

#include "src/common/clock.h"
#include "src/obs/exporters.h"
#include "src/obs/trace.h"

namespace obladi {

StorageServer::StorageServer(std::shared_ptr<BucketStore> buckets,
                             std::shared_ptr<LogStore> log, StorageServerOptions options)
    : buckets_(std::move(buckets)), log_(std::move(log)), options_(std::move(options)) {}

StorageServer::~StorageServer() { Stop(); }

Status StorageServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(*listener);
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  if (options_.admin_listener && metrics_ == nullptr) {
    metrics_ = std::make_unique<MetricsRegistry>();
    metrics_->AddSource(
        [this](MetricsSink& sink) { ExportStorageServerStats(sink, stats_, {}); });
    // One service-time summary per request type, pre-registered so the
    // per-request lookup is a plain array index.
    for (uint8_t t = 1; t < op_histograms_.size(); ++t) {
      MsgType type = static_cast<MsgType>(t);
      if (type == MsgType::kResponse) {
        continue;
      }
      const char* name = MsgTypeName(type);
      if (name == nullptr) {
        continue;
      }
      op_histograms_[t] = &metrics_->GetHistogram(
          "server_op_service_time_us", {{"op", name}}, "per-op service time (us)");
    }
    AdminServerOptions opts;
    opts.host = options_.admin_host;
    opts.port = options_.admin_port;
    admin_ = std::make_unique<AdminServer>(opts, metrics_.get());
    Status st = admin_->Start();
    if (!st.ok()) {
      // A busy admin port must not take the storage node down.
      std::fprintf(stderr, "[obs] storage admin listener failed to start: %s\n",
                   st.message().c_str());
      admin_.reset();
    }
  }
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void StorageServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  listener_.Shutdown();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // Readers exit once their recv fails after the shutdown above (each first
  // drains its in-flight worker requests).
  {
    std::lock_guard<std::mutex> lk(readers_mu_);
    for (Reader& r : readers_) {
      if (r.thread.joinable()) {
        r.thread.join();
      }
    }
    readers_.clear();
  }
  workers_.reset();
  listener_.Close();
  admin_.reset();  // stop scrapes before a restart rebinds the port
}

void StorageServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      // Stop() shut the listener down, or a transient accept error (e.g.
      // EMFILE under fd exhaustion — back off instead of spinning a core).
      if (running_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_shared<ConnState>();
    state->sock = std::move(*conn);
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      live_fds_.insert(state->sock.fd());
    }
    if (!running_.load(std::memory_order_acquire)) {
      // Stop() may have swept live_fds_ between our accept and the insert
      // above; without this re-check the reader would block in recv on a
      // socket nobody will ever shut down, and Stop() would hang joining it.
      state->sock.Shutdown();
    }
    // A dedicated reader per connection: it only reassembles frames and
    // enqueues work, so it costs a mostly-sleeping thread, and connections
    // are few (the async client multiplexes hundreds of RPCs over one).
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lk(readers_mu_);
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = readers_.erase(it);
      } else {
        ++it;
      }
    }
    readers_.push_back(Reader{std::thread([this, state, done] {
                                ReadLoop(state);
                                done->store(true, std::memory_order_release);
                              }),
                              done});
  }
}

void StorageServer::ReadLoop(const std::shared_ptr<ConnState>& conn) {
  while (running_.load(std::memory_order_acquire)) {
    auto frame = conn->sock.RecvFrame(options_.max_frame_bytes);
    if (!frame.ok()) {
      // Clean disconnect, shutdown, or an oversized/garbage frame; either
      // way this connection is done.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    stats_.bytes_received.fetch_add(frame->size() + 4, std::memory_order_relaxed);

    NetRequest req;
    Status decoded = DecodeRequest(*frame, &req);
    uint64_t seq = conn->next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!decoded.ok()) {
      // Header (version, type, id) is the first thing decoded; a garbage
      // frame may still yield a usable id, so answer before closing. The
      // stream may be desynced, so do not trust anything after this frame.
      // Let in-flight requests finish first: their responses are valid and
      // the client is still pairing by id.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      {
        std::unique_lock<std::mutex> lk(conn->flight_mu);
        conn->flight_cv.wait(lk, [&] { return conn->in_flight == 0; });
      }
      SendResponse(*conn, NetResponse::FromStatus(req, decoded), seq);
      break;
    }

    {
      std::lock_guard<std::mutex> lk(conn->flight_mu);
      ++conn->in_flight;
    }
    // Dispatch to the worker pool and go straight back to recv: frames keep
    // arriving while earlier requests execute, and their responses go out
    // in completion order.
    workers_->Enqueue([this, conn, req = std::move(req), seq]() mutable {
      ServeRequest(conn, std::move(req), seq);
    });
  }

  // Drain in-flight requests, then deregister and close. Deregister happens
  // before the socket closes so Stop() never shutdown()s a recycled fd.
  {
    std::unique_lock<std::mutex> lk(conn->flight_mu);
    conn->flight_cv.wait(lk, [&] { return conn->in_flight == 0; });
  }
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    live_fds_.erase(conn->sock.fd());
  }
  conn->sock.Close();
}

void StorageServer::ServeRequest(const std::shared_ptr<ConnState>& conn, NetRequest req,
                                 uint64_t seq) {
  size_t op = static_cast<size_t>(req.type);
  Histogram* service_time =
      op < op_histograms_.size() ? op_histograms_[op] : nullptr;
  uint64_t start_us = service_time != nullptr ? NowMicros() : 0;
  NetResponse resp;
  {
    OBS_SPAN("server", MsgTypeName(req.type));
    resp = Handle(req);
  }
  if (service_time != nullptr) {
    service_time->Record(NowMicros() - start_us);
  }
  stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
  SendResponse(*conn, resp, seq);
  {
    std::lock_guard<std::mutex> lk(conn->flight_mu);
    --conn->in_flight;
  }
  conn->flight_cv.notify_all();
}

void StorageServer::SendResponse(ConnState& conn, const NetResponse& resp, uint64_t seq) {
  Bytes payload = EncodeResponse(resp);
  std::lock_guard<std::mutex> lk(conn.send_mu);
  // A reply whose frame arrived *after* one that has not replied yet means
  // completion order diverged from arrival order.
  uint64_t last = conn.last_replied_seq.load(std::memory_order_relaxed);
  if (seq < last) {
    stats_.out_of_order_replies.fetch_add(1, std::memory_order_relaxed);
  } else {
    conn.last_replied_seq.store(seq, std::memory_order_relaxed);
  }
  if (conn.sock.SendFrame(payload, options_.max_frame_bytes).ok()) {
    stats_.bytes_sent.fetch_add(payload.size() + 4, std::memory_order_relaxed);
  } else {
    // A response that cannot be sent (peer gone, or the frame exceeds the
    // size cap) leaves its request id unanswered forever on a connection
    // that pairs by id — kill the stream so the client's fail-fast path
    // fires instead. Shutdown unblocks the reader; it drains and closes.
    conn.sock.Shutdown();
  }
}

NetResponse StorageServer::Handle(NetRequest& req) {
  NetResponse resp;
  resp.id = req.id;
  resp.request_type = req.type;

  bool is_log_rpc = (req.type >= MsgType::kLogAppend && req.type <= MsgType::kLogNextLsn) ||
                    req.type == MsgType::kLogAppendSync;
  if (is_log_rpc && !log_) {
    return NetResponse::FromStatus(
        req, Status::FailedPrecondition("no log store attached to this server"));
  }

  switch (req.type) {
    case MsgType::kReadSlots: {
      auto results = buckets_->ReadSlotsBatch(req.reads);
      resp.reads.reserve(results.size());
      for (auto& result : results) {
        ReadResult read;
        if (result.ok()) {
          read.payload = std::move(*result);
        } else {
          read.code = result.status().code();
          read.message = result.status().message();
        }
        resp.reads.push_back(std::move(read));
      }
      break;
    }
    case MsgType::kReadPathsXor: {
      // One backend batch for ALL paths' slots (the storage touch pattern —
      // and its round-trip count — is identical to kReadSlots); the XOR
      // reduction happens here on the worker pool, so only headers plus one
      // body per path travel back.
      std::vector<SlotRef> flat;
      for (const PathSlots& path : req.path_reads) {
        flat.insert(flat.end(), path.slots.begin(), path.slots.end());
      }
      auto slots = buckets_->ReadSlotsBatch(flat);
      resp.xor_reads.reserve(req.path_reads.size());
      size_t next = 0;
      for (const PathSlots& path : req.path_reads) {
        std::vector<StatusOr<Bytes>> mine(
            std::make_move_iterator(slots.begin() + static_cast<ptrdiff_t>(next)),
            std::make_move_iterator(slots.begin() +
                                    static_cast<ptrdiff_t>(next + path.slots.size())));
        next += path.slots.size();
        auto combined = BucketStore::XorCombineSlots(mine, req.xor_header_bytes,
                                                     req.xor_trailer_bytes);
        XorReadResult read;
        if (combined.ok()) {
          read.headers = std::move(combined->headers);
          read.body_xor = std::move(combined->body_xor);
        } else {
          read.code = combined.status().code();
          read.message = combined.status().message();
        }
        resp.xor_reads.push_back(std::move(read));
      }
      break;
    }
    case MsgType::kWriteBuckets: {
      Status st = buckets_->WriteBucketsBatch(std::move(req.writes));
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kTruncateBucket: {
      Status st = buckets_->TruncateBucket(req.bucket, req.keep_from_version);
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kTruncateBucketsBatch: {
      Status st = buckets_->TruncateBucketsBatch(req.truncates);
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kNumBuckets:
      resp.u64 = buckets_->num_buckets();
      break;
    case MsgType::kLogAppend: {
      auto lsn = log_->Append(std::move(req.record));
      if (!lsn.ok()) {
        return NetResponse::FromStatus(req, lsn.status());
      }
      resp.u64 = *lsn;
      break;
    }
    case MsgType::kLogAppendSync: {
      // Fused durable append: the reply implies the record is synced, so the
      // client's one round trip buys full durability.
      auto lsn = log_->AppendSync(std::move(req.record));
      if (!lsn.ok()) {
        return NetResponse::FromStatus(req, lsn.status());
      }
      resp.u64 = *lsn;
      break;
    }
    case MsgType::kLogSync: {
      Status st = log_->Sync();
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kLogReadAll: {
      auto records = log_->ReadAll();
      if (!records.ok()) {
        return NetResponse::FromStatus(req, records.status());
      }
      resp.records = std::move(*records);
      break;
    }
    case MsgType::kLogTruncate: {
      Status st = log_->Truncate(req.lsn);
      if (!st.ok()) {
        return NetResponse::FromStatus(req, st);
      }
      break;
    }
    case MsgType::kLogNextLsn:
      resp.u64 = log_->NextLsn();
      break;
    case MsgType::kPing:
      break;
    case MsgType::kResponse:
      return NetResponse::FromStatus(req, Status::InvalidArgument("response sent as request"));
  }
  return resp;
}

}  // namespace obladi
