// Tiny fixed-width table printer for benchmark output. Each bench binary
// prints the same rows/series the paper's figure or table reports.
#ifndef OBLADI_SRC_HARNESS_TABLE_H_
#define OBLADI_SRC_HARNESS_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace obladi {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& Columns(std::vector<std::string> headers) {
    headers_ = std::move(headers);
    return *this;
  }

  Table& Row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) {
          widths[c] = row[c].size();
        }
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), headers_[c].c_str());
    }
    std::printf("\n");
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s  ", std::string(widths[c], '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < headers_.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    }
    std::fflush(stdout);
  }

  // Accessors for machine-readable emission (bench JSON artifacts).
  const std::string& title() const { return title_; }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

}  // namespace obladi

#endif  // OBLADI_SRC_HARNESS_TABLE_H_
