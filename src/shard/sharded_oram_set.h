// ShardedOramSet: K independent parallel Ring ORAM instances behind one
// oblivious epoch coordinator.
//
// A single Ring ORAM serializes on one position map, one stash, and one
// eviction schedule; the paper (§9) names parallelizing the ORAM itself as
// the route to cloud-scale throughput. This subsystem partitions the dense
// BlockId space across K RingOram instances (ShardRouter striping), each
// with its own BucketStore namespace, position map, stash, and eviction
// schedule, and coordinates them so the *global* epoch structure the proxy
// relies on (padded read batches, dummiless write batches, deferred flush at
// epoch end, delta checkpoints, shadow-paging truncation) is preserved.
//
// Obliviousness of routing: which shard a request targets is a function of
// its block id, so raw per-shard request counts would leak the workload
// (Zipfian skew concentrates traffic on hot shards). The coordinator
// therefore pads every shard's read sub-batch to the same fixed size
// `read_quota` (= ceil(b_read / K)) with dummy full-path reads, and pads
// every shard's write batch to `write_quota` with schedule bumps, exactly as
// the single-ORAM proxy pads its batches. The storage server observes K
// identical-shaped request streams per batch regardless of skew; admission
// control above (the proxy's batch filling / MVTSO write-batch caps) aborts
// transactions that would overflow a shard's quota, mirroring the paper's
// "batch filling up" aborts.
//
// Epoch fate sharing across shards: FinishEpoch fans out to all K shards and
// succeeds only if every shard's deferred write phase flushed; the proxy
// checkpoints all K shards in one log record (see RecoveryUnit), so either
// the whole multi-shard epoch becomes durable or none of it does.
#ifndef OBLADI_SRC_SHARD_SHARDED_ORAM_SET_H_
#define OBLADI_SRC_SHARD_SHARDED_ORAM_SET_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/crypto/encryptor.h"
#include "src/oram/ring_oram.h"
#include "src/shard/shard_router.h"
#include "src/storage/bucket_store.h"

namespace obladi {

struct ShardedOramOptions {
  RingOramOptions oram;   // template applied to every shard
  size_t read_quota = 0;  // per-shard logical requests per read batch
  size_t write_quota = 0; // per-shard real-write capacity per epoch
  // Split oram.io_threads across the shards (each shard gets at least 2) so
  // total I/O concurrency stays comparable to the single-ORAM configuration.
  bool divide_io_threads = true;
};

class ShardedOramSet {
 public:
  // Shared backing store: shard i owns buckets [i*B, (i+1)*B), where B is
  // layout.shard_config.num_buckets(). The store must have at least
  // layout.total_buckets() buckets.
  ShardedOramSet(const ShardLayout& layout, const ShardedOramOptions& options,
                 std::shared_ptr<BucketStore> store,
                 std::shared_ptr<Encryptor> encryptor, uint64_t seed);

  // Per-shard backing stores — e.g. one latency-injecting decorator (its own
  // connection pool) per shard, the cloud deployment this subsystem models.
  ShardedOramSet(const ShardLayout& layout, const ShardedOramOptions& options,
                 std::vector<std::shared_ptr<BucketStore>> shard_stores,
                 std::shared_ptr<Encryptor> encryptor, uint64_t seed);

  ShardedOramSet(const ShardedOramSet&) = delete;
  ShardedOramSet& operator=(const ShardedOramSet&) = delete;

  const ShardLayout& layout() const { return layout_; }
  const ShardRouter& router() const { return router_; }
  uint32_t num_shards() const { return router_.num_shards(); }
  size_t read_quota() const { return options_.read_quota; }
  size_t write_quota() const { return options_.write_quota; }

  // Bulk-load initial values indexed by *global* BlockId; runs every shard's
  // Initialize concurrently.
  Status Initialize(const std::vector<Bytes>& values);

  // Execute one global read batch: route the (global) ids to their shards,
  // pad every shard's sub-batch to read_quota with dummy path reads, run the
  // K sub-batches concurrently, and scatter results back into input order.
  // Entries equal to kInvalidBlockId are global padding and produce empty
  // payloads. Fails with ResourceExhausted if any shard receives more than
  // read_quota real requests (admission control lives in the proxy).
  StatusOr<std::vector<Bytes>> ReadBatch(const std::vector<BlockId>& ids);

  // Early-answer form (the scheduler's access_r stage fanned over shards):
  // `early` fires with (global batch index, payload) from a shard's I/O
  // thread as soon as that access's path group decrypts — concurrently
  // across shards, so the callback must be thread-safe. Same contract as
  // RingOram::ReadBatch(ids, early): every fire happens-before return,
  // slots fire at most once, and the returned vector is always complete.
  using EarlyResultFn = RingOram::EarlyResultFn;
  StatusOr<std::vector<Bytes>> ReadBatch(const std::vector<BlockId>& ids,
                                         const EarlyResultFn& early);

  // Recovery replay of one shard's logged sub-batch (§8). The plan carries
  // shard-local ids and leaves.
  StatusOr<std::vector<Bytes>> ReplayShardBatch(uint32_t shard, const BatchPlan& plan);

  // One all-dummy sub-batch on one shard (crash-epoch completion: every
  // shard must observe its full complement of R sub-batches per epoch).
  Status ReadShardDummyBatch(uint32_t shard);

  // Dummiless buffered writes, keyed by global BlockId. Every shard's batch
  // is padded to write_quota; more than write_quota real writes on one shard
  // is a ResourceExhausted error (the MVTSO epoch-commit admission keeps
  // this from happening in the proxy).
  Status WriteBatch(const std::vector<std::pair<BlockId, Bytes>>& writes);

  // Split form (pipelined proxy): advance every shard's eviction schedule by
  // `per_shard_bumps` — the write batch's schedule movement is a fixed,
  // value-independent count, so the proxy spreads it across the epoch's
  // paced read batches (the triggered read phases dispatch with the next
  // batch wave) and the close applies only the values. Per epoch the
  // advances must total write_quota per shard. The single-shard form backs
  // crash-recovery replay, which re-advances per replayed batch.
  void AdvanceWriteSchedule(size_t per_shard_bumps);
  void AdvanceShardWriteSchedule(uint32_t shard, size_t bumps);
  // Deposit decided values with no schedule movement (quota-checked).
  Status ApplyWriteValues(const std::vector<std::pair<BlockId, Bytes>>& writes);

  // Flush all shards' deferred write phases concurrently; advances every
  // shard to the next epoch. Fails if any shard fails (fate sharing).
  // Equivalent to BeginRetire + AwaitRetireDurable + CollectRetired.
  Status FinishEpoch();

  // --- pipelined epoch retirement (fans the RingOram split out over K
  // shards; fate sharing holds stage-wise: the epoch is durable only when
  // every shard's retirement is) ---
  // Plan + encrypt + submit every shard's write-back without waiting;
  // advances all shards to the next epoch.
  Status BeginRetire();
  // Wait until every shard's submitted images are durable. Takes no ORAM
  // metadata locks (safe against concurrently executing next-epoch batches).
  Status AwaitRetireDurable();
  // Drop all shards' retiring buffers (only after AwaitRetireDurable).
  void CollectRetired();
  // In-flight retiring generations (shards move in lockstep; reports the
  // maximum across shards).
  size_t RetiringGenerations() const;
  // Stash + retiring blocks across shards (the pipeline's memory bound).
  size_t InflightBlocks() const;

  // Shadow-paging garbage collection, fanned out across shards. Call only
  // after the epoch's checkpoint is durable.
  Status TruncateStaleVersions();

  // Hook invoked with (shard, plan) before a shard sub-batch's physical
  // reads are issued; the proxy uses it for read-path logging (§8). Shard
  // sub-batches of one global batch run concurrently, so the hook must be
  // thread-safe.
  void SetBatchPlannedHook(std::function<Status(uint32_t, const BatchPlan&)> hook);

  // Attaches the trace-shape watchdog. Fed from the same per-shard plan
  // hooks the recovery logger uses (so it observes each shard ORAM's actual
  // planned sub-batch, not the coordinator's intent), from every
  // write-schedule advance, and from every epoch close. Must outlive this
  // set; nullptr detaches.
  void SetWatchdog(class TraceShapeWatchdog* watchdog);

  // --- checkpoint-state accessors (fan-in/out over shards) ---
  RingOram& shard(uint32_t i) { return *shards_[i]; }
  const RingOram& shard(uint32_t i) const { return *shards_[i]; }
  std::vector<RingOram*> shard_ptrs();

  Status RestoreShardState(uint32_t shard, PositionMap position_map,
                           std::vector<BucketMeta> metas, Stash stash,
                           uint64_t access_count, uint64_t evict_count, EpochId epoch);

  EpochId epoch() const { return shards_[0]->epoch(); }
  uint64_t access_count() const;  // summed across shards
  uint64_t evict_count() const;   // summed across shards

  RingOramStats stats() const;  // aggregated across shards
  std::vector<RingOramStats> per_shard_stats() const;
  void ResetStats();

  // Per-shard health, recorded from every fanned-out shard operation:
  // 1 = healthy (last operation succeeded), 0 = degraded (last operation
  // failed — partitioned storage node, deadline expiries, ...). Exported as
  // obs gauges by the proxy so an operator can see WHICH shard an epoch
  // abort came from. ShardFailuresSnapshot counts cumulative failures.
  std::vector<uint8_t> ShardHealthSnapshot() const;
  std::vector<uint64_t> ShardFailuresSnapshot() const;

  // Shard 0's physical trace (the accessor existing single-shard tests and
  // examples use); per-shard recorders via shard_trace().
  TraceRecorder& trace() { return shards_[0]->trace(); }
  TraceRecorder& shard_trace(uint32_t i) { return shards_[i]->trace(); }

  Status CheckInvariants() const;

 private:
  void Construct(std::vector<std::shared_ptr<BucketStore>> shard_stores,
                 std::shared_ptr<Encryptor> encryptor, uint64_t seed);
  StatusOr<std::vector<Bytes>> ReadBatchImpl(const std::vector<BlockId>& ids,
                                             const EarlyResultFn* early);
  // Run fn(shard) for every shard, concurrently when K > 1; returns the
  // first error. Records each shard's outcome into the health snapshot.
  Status RunOnShards(const std::function<Status(uint32_t)>& fn);
  void RecordShardOutcome(uint32_t shard, bool ok);
  // (Re)installs the per-shard RingOram plan hooks that multiplex the user
  // hook and the watchdog feed.
  void InstallShardHooks();

  ShardLayout layout_;
  ShardedOramOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<RingOram>> shards_;
  // Coordinator pool: one slot per shard, used only to fan sub-batch and
  // epoch operations out; each shard's RingOram does its own I/O pooling.
  std::unique_ptr<ThreadPool> coordinator_;
  std::function<Status(uint32_t, const BatchPlan&)> user_hook_;
  class TraceShapeWatchdog* watchdog_ = nullptr;

  mutable std::mutex health_mu_;
  std::vector<uint8_t> shard_healthy_;    // 1 = last op ok
  std::vector<uint64_t> shard_failures_;  // cumulative failed ops
};

}  // namespace obladi

#endif  // OBLADI_SRC_SHARD_SHARDED_ORAM_SET_H_
