#include "src/shard/sharded_oram_set.h"

#include <algorithm>
#include <thread>

#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/shard/shard_store_view.h"

namespace obladi {

ShardedOramSet::ShardedOramSet(const ShardLayout& layout, const ShardedOramOptions& options,
                               std::shared_ptr<BucketStore> store,
                               std::shared_ptr<Encryptor> encryptor, uint64_t seed)
    : layout_(layout), options_(options), router_(layout.num_shards) {
  std::vector<std::shared_ptr<BucketStore>> views;
  views.reserve(layout_.num_shards);
  for (uint32_t s = 0; s < layout_.num_shards; ++s) {
    if (layout_.num_shards == 1) {
      views.push_back(store);  // no translation overhead in the K=1 path
    } else {
      views.push_back(std::make_shared<ShardStoreView>(
          store, layout_.bucket_offset(s), layout_.shard_config.num_buckets()));
    }
  }
  Construct(std::move(views), std::move(encryptor), seed);
}

ShardedOramSet::ShardedOramSet(const ShardLayout& layout, const ShardedOramOptions& options,
                               std::vector<std::shared_ptr<BucketStore>> shard_stores,
                               std::shared_ptr<Encryptor> encryptor, uint64_t seed)
    : layout_(layout), options_(options), router_(layout.num_shards) {
  Construct(std::move(shard_stores), std::move(encryptor), seed);
}

void ShardedOramSet::Construct(std::vector<std::shared_ptr<BucketStore>> shard_stores,
                               std::shared_ptr<Encryptor> encryptor, uint64_t seed) {
  RingOramOptions per_shard = options_.oram;
  if (options_.divide_io_threads && layout_.num_shards > 1) {
    per_shard.io_threads =
        std::max<size_t>(2, options_.oram.io_threads / layout_.num_shards);
  }
  shards_.reserve(layout_.num_shards);
  for (uint32_t s = 0; s < layout_.num_shards; ++s) {
    // Distinct per-shard seeds: shards must draw independent leaves.
    uint64_t shard_seed = seed ^ (0x9e3779b97f4a7c15ull * (s + 1));
    shards_.push_back(std::make_unique<RingOram>(layout_.ConfigForShard(s), per_shard,
                                                 shard_stores[s], encryptor, shard_seed));
  }
  if (layout_.num_shards > 1) {
    coordinator_ = std::make_unique<ThreadPool>(layout_.num_shards);
  }
}

Status ShardedOramSet::RunOnShards(const std::function<Status(uint32_t)>& fn) {
  if (layout_.num_shards == 1) {
    Status st = fn(0);
    RecordShardOutcome(0, st.ok());
    return st;
  }
  std::vector<Status> results(layout_.num_shards, Status::Ok());
  coordinator_->ParallelFor(layout_.num_shards, [&](size_t s) {
    results[s] = fn(static_cast<uint32_t>(s));
  });
  for (uint32_t s = 0; s < layout_.num_shards; ++s) {
    RecordShardOutcome(s, results[s].ok());
  }
  for (const Status& st : results) {
    OBLADI_RETURN_IF_ERROR(st);
  }
  return Status::Ok();
}

void ShardedOramSet::RecordShardOutcome(uint32_t shard, bool ok) {
  std::lock_guard<std::mutex> lk(health_mu_);
  if (shard_healthy_.size() != layout_.num_shards) {
    shard_healthy_.assign(layout_.num_shards, 1);
    shard_failures_.assign(layout_.num_shards, 0);
  }
  shard_healthy_[shard] = ok ? 1 : 0;
  if (!ok) {
    shard_failures_[shard]++;
  }
}

std::vector<uint8_t> ShardedOramSet::ShardHealthSnapshot() const {
  std::lock_guard<std::mutex> lk(health_mu_);
  if (shard_healthy_.size() != layout_.num_shards) {
    return std::vector<uint8_t>(layout_.num_shards, 1);
  }
  return shard_healthy_;
}

std::vector<uint64_t> ShardedOramSet::ShardFailuresSnapshot() const {
  std::lock_guard<std::mutex> lk(health_mu_);
  if (shard_failures_.size() != layout_.num_shards) {
    return std::vector<uint64_t>(layout_.num_shards, 0);
  }
  return shard_failures_;
}

Status ShardedOramSet::Initialize(const std::vector<Bytes>& values) {
  if (values.size() > layout_.global_capacity) {
    return Status::InvalidArgument("more initial values than global capacity");
  }
  // Split the global dense id space into per-shard dense slices. Local slots
  // beyond the last global id (when K does not divide N) load as empty
  // blocks: they are mapped and evictable but never addressed.
  std::vector<std::vector<Bytes>> per_shard(layout_.num_shards);
  for (auto& v : per_shard) {
    v.resize(layout_.shard_capacity());
  }
  for (BlockId g = 0; g < values.size(); ++g) {
    per_shard[router_.ShardOf(g)][router_.LocalId(g)] = values[g];
  }
  return RunOnShards(
      [&](uint32_t s) { return shards_[s]->Initialize(per_shard[s]); });
}

StatusOr<std::vector<Bytes>> ShardedOramSet::ReadBatch(const std::vector<BlockId>& ids) {
  return ReadBatchImpl(ids, nullptr);
}

StatusOr<std::vector<Bytes>> ShardedOramSet::ReadBatch(const std::vector<BlockId>& ids,
                                                       const EarlyResultFn& early) {
  return ReadBatchImpl(ids, early ? &early : nullptr);
}

StatusOr<std::vector<Bytes>> ShardedOramSet::ReadBatchImpl(const std::vector<BlockId>& ids,
                                                           const EarlyResultFn* early) {
  const uint32_t k = layout_.num_shards;
  std::vector<std::vector<BlockId>> sub(k);
  std::vector<std::vector<size_t>> result_slot(k);
  for (uint32_t s = 0; s < k; ++s) {
    sub[s].reserve(options_.read_quota);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == kInvalidBlockId) {
      continue;  // global padding; the per-shard padding below subsumes it
    }
    uint32_t s = router_.ShardOf(ids[i]);
    if (sub[s].size() >= options_.read_quota) {
      return Status::ResourceExhausted("shard read sub-batch quota exceeded");
    }
    sub[s].push_back(router_.LocalId(ids[i]));
    result_slot[s].push_back(i);
  }
  // Pad every sub-batch to the fixed quota: the adversary sees exactly
  // read_quota path reads per shard per batch, independent of routing skew.
  for (uint32_t s = 0; s < k; ++s) {
    sub[s].resize(options_.read_quota, kInvalidBlockId);
  }

  std::vector<StatusOr<std::vector<Bytes>>> shard_results(
      k, StatusOr<std::vector<Bytes>>(Status::Internal("not run")));
  Status st = RunOnShards([&](uint32_t s) {
    if (early != nullptr) {
      // Translate a shard-local early answer to the global batch index.
      // Only real (non-padding) requests occupy the dense prefix of sub[s],
      // so every fire's local index has a result_slot mapping.
      RingOram::EarlyResultFn shard_early = [&, s](size_t j, const Bytes& value) {
        if (j < result_slot[s].size()) {
          (*early)(result_slot[s][j], value);
        }
      };
      shard_results[s] = shards_[s]->ReadBatch(sub[s], shard_early);
    } else {
      shard_results[s] = shards_[s]->ReadBatch(sub[s]);
    }
    return shard_results[s].ok() ? Status::Ok() : shard_results[s].status();
  });
  OBLADI_RETURN_IF_ERROR(st);

  std::vector<Bytes> results(ids.size());
  for (uint32_t s = 0; s < k; ++s) {
    for (size_t j = 0; j < result_slot[s].size(); ++j) {
      results[result_slot[s][j]] = std::move((*shard_results[s])[j]);
    }
  }
  return results;
}

StatusOr<std::vector<Bytes>> ShardedOramSet::ReplayShardBatch(uint32_t shard,
                                                              const BatchPlan& plan) {
  if (shard >= layout_.num_shards) {
    return Status::InvalidArgument("replay plan names an unknown shard");
  }
  // Replayed batches skip the plan hook (the plan is already logged), so
  // feed the watchdog here — the crash epoch still owes every shard its
  // full complement of shaped sub-batches.
  if (watchdog_ != nullptr) {
    watchdog_->ObserveShardBatch(shard, plan.requests.size());
  }
  return shards_[shard]->ReplayReadBatch(plan);
}

Status ShardedOramSet::ReadShardDummyBatch(uint32_t shard) {
  if (shard >= layout_.num_shards) {
    return Status::InvalidArgument("unknown shard");
  }
  std::vector<BlockId> dummies(options_.read_quota, kInvalidBlockId);
  auto result = shards_[shard]->ReadBatch(dummies);
  return result.ok() ? Status::Ok() : result.status();
}

Status ShardedOramSet::WriteBatch(const std::vector<std::pair<BlockId, Bytes>>& writes) {
  const uint32_t k = layout_.num_shards;
  std::vector<std::vector<std::pair<BlockId, Bytes>>> sub(k);
  for (const auto& [id, value] : writes) {
    uint32_t s = router_.ShardOf(id);
    if (sub[s].size() >= options_.write_quota) {
      return Status::ResourceExhausted("shard write batch quota exceeded");
    }
    sub[s].emplace_back(router_.LocalId(id), value);
  }
  // Every shard executes a write batch padded to write_quota — shards with
  // few (or no) real writes still advance their eviction schedules by the
  // same amount, keeping the per-shard schedule workload independent.
  return RunOnShards([&](uint32_t s) {
    OBLADI_RETURN_IF_ERROR(shards_[s]->WriteBatch(sub[s], options_.write_quota));
    if (watchdog_ != nullptr) {
      watchdog_->ObserveShardAdvance(s, options_.write_quota);
    }
    return Status::Ok();
  });
}

void ShardedOramSet::AdvanceWriteSchedule(size_t per_shard_bumps) {
  Status st = RunOnShards([&](uint32_t s) {
    shards_[s]->AdvanceWriteSchedule(per_shard_bumps);
    if (watchdog_ != nullptr) {
      watchdog_->ObserveShardAdvance(s, per_shard_bumps);
    }
    return Status::Ok();
  });
  (void)st;  // schedule advancement cannot fail
}

void ShardedOramSet::AdvanceShardWriteSchedule(uint32_t shard, size_t bumps) {
  if (shard < layout_.num_shards) {
    shards_[shard]->AdvanceWriteSchedule(bumps);
    if (watchdog_ != nullptr) {
      watchdog_->ObserveShardAdvance(shard, bumps);
    }
  }
}

Status ShardedOramSet::ApplyWriteValues(const std::vector<std::pair<BlockId, Bytes>>& writes) {
  const uint32_t k = layout_.num_shards;
  std::vector<std::vector<std::pair<BlockId, Bytes>>> sub(k);
  for (const auto& [id, value] : writes) {
    uint32_t s = router_.ShardOf(id);
    if (sub[s].size() >= options_.write_quota) {
      return Status::ResourceExhausted("shard write batch quota exceeded");
    }
    sub[s].emplace_back(router_.LocalId(id), value);
  }
  return RunOnShards([&](uint32_t s) { return shards_[s]->ApplyWriteValues(sub[s]); });
}

Status ShardedOramSet::FinishEpoch() {
  // Epoch boundary: the watchdog checks this epoch's per-shard tallies
  // before any shard advances.
  if (watchdog_ != nullptr) {
    watchdog_->ObserveEpochClose();
  }
  return RunOnShards([&](uint32_t s) { return shards_[s]->FinishEpoch(); });
}

Status ShardedOramSet::BeginRetire() {
  OBS_SPAN("shard", "shard.begin_retire");
  if (watchdog_ != nullptr) {
    watchdog_->ObserveEpochClose();
  }
  return RunOnShards([&](uint32_t s) { return shards_[s]->BeginRetire(); });
}

Status ShardedOramSet::AwaitRetireDurable() {
  // Sequential, NOT RunOnShards: every shard's flush is already in flight
  // (BeginRetire handed encrypt+submit to each shard's own pool), each wait
  // is a plain block on that shard's completion count, and the retirement
  // stage needs the last completion either way. Parking K blocking waits on
  // the coordinator pool would starve the next epoch's batch fan-outs.
  Status first = Status::Ok();
  for (auto& shard : shards_) {
    Status st = shard->AwaitRetireDurable();
    if (!st.ok() && first.ok()) {
      first = st;
    }
  }
  return first;
}

void ShardedOramSet::CollectRetired() {
  for (auto& shard : shards_) {
    shard->CollectRetired();
  }
}

size_t ShardedOramSet::RetiringGenerations() const {
  size_t depth = 0;
  for (const auto& shard : shards_) {
    depth = std::max(depth, shard->RetiringGenerations());
  }
  return depth;
}

size_t ShardedOramSet::InflightBlocks() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->InflightBlocks();
  }
  return total;
}

Status ShardedOramSet::TruncateStaleVersions() {
  // NOT RunOnShards: the retirement stage calls this while the next epoch's
  // batch fan-outs occupy the coordinator pool. Sharing that pool deadlocks
  // until a timeout fires — truncate tasks that win pool slots block on
  // shard locks held by running sub-batches, while the sub-batches those
  // are waiting for (their plan rendezvous peers) sit queued behind them.
  if (layout_.num_shards == 1) {
    return shards_[0]->TruncateStaleVersions();
  }
  std::vector<Status> results(layout_.num_shards, Status::Ok());
  std::vector<std::thread> workers;
  workers.reserve(layout_.num_shards);
  for (uint32_t s = 0; s < layout_.num_shards; ++s) {
    workers.emplace_back([&, s] { results[s] = shards_[s]->TruncateStaleVersions(); });
  }
  for (auto& w : workers) {
    w.join();
  }
  for (const Status& st : results) {
    OBLADI_RETURN_IF_ERROR(st);
  }
  return Status::Ok();
}

void ShardedOramSet::SetBatchPlannedHook(
    std::function<Status(uint32_t, const BatchPlan&)> hook) {
  user_hook_ = std::move(hook);
  InstallShardHooks();
}

void ShardedOramSet::SetWatchdog(TraceShapeWatchdog* watchdog) {
  watchdog_ = watchdog;
  InstallShardHooks();
}

void ShardedOramSet::InstallShardHooks() {
  for (uint32_t s = 0; s < layout_.num_shards; ++s) {
    if (!user_hook_ && watchdog_ == nullptr) {
      shards_[s]->SetBatchPlannedHook(nullptr);
      continue;
    }
    auto hook = user_hook_;
    TraceShapeWatchdog* wd = watchdog_;
    shards_[s]->SetBatchPlannedHook([hook, wd, s](const BatchPlan& plan) {
      // The plan is what the shard ORAM will actually issue, padding
      // included — the right place to assert the padded shape.
      if (wd != nullptr) {
        wd->ObserveShardBatch(s, plan.requests.size());
      }
      return hook ? hook(s, plan) : Status::Ok();
    });
  }
}

std::vector<RingOram*> ShardedOramSet::shard_ptrs() {
  std::vector<RingOram*> out;
  out.reserve(shards_.size());
  for (auto& s : shards_) {
    out.push_back(s.get());
  }
  return out;
}

Status ShardedOramSet::RestoreShardState(uint32_t shard, PositionMap position_map,
                                         std::vector<BucketMeta> metas, Stash stash,
                                         uint64_t access_count, uint64_t evict_count,
                                         EpochId epoch) {
  if (shard >= layout_.num_shards) {
    return Status::InvalidArgument("unknown shard");
  }
  return shards_[shard]->RestoreState(std::move(position_map), std::move(metas),
                                      std::move(stash), access_count, evict_count, epoch);
}

uint64_t ShardedOramSet::access_count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->access_count();
  }
  return total;
}

uint64_t ShardedOramSet::evict_count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->evict_count();
  }
  return total;
}

RingOramStats ShardedOramSet::stats() const {
  RingOramStats agg;
  for (const auto& s : shards_) {
    RingOramStats st = s->stats();
    agg.logical_accesses += st.logical_accesses;
    agg.physical_slot_reads += st.physical_slot_reads;
    agg.physical_bucket_writes += st.physical_bucket_writes;
    agg.planned_bucket_rewrites += st.planned_bucket_rewrites;
    agg.evictions += st.evictions;
    agg.early_reshuffles += st.early_reshuffles;
    agg.buffered_bucket_skips += st.buffered_bucket_skips;
    agg.retiring_bucket_skips += st.retiring_bucket_skips;
    agg.xor_path_reads += st.xor_path_reads;
    agg.stash_cache_skips += st.stash_cache_skips;
    agg.early_results += st.early_results;
    agg.eager_evict_dispatches += st.eager_evict_dispatches;
    agg.flush_plan_us += st.flush_plan_us;
    agg.materialize_us += st.materialize_us;
    agg.write_drain_us += st.write_drain_us;
  }
  return agg;
}

std::vector<RingOramStats> ShardedOramSet::per_shard_stats() const {
  std::vector<RingOramStats> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    out.push_back(s->stats());
  }
  return out;
}

void ShardedOramSet::ResetStats() {
  for (auto& s : shards_) {
    s->ResetStats();
  }
}

Status ShardedOramSet::CheckInvariants() const {
  for (const auto& s : shards_) {
    OBLADI_RETURN_IF_ERROR(s->CheckInvariants());
  }
  return Status::Ok();
}

}  // namespace obladi
