// Key-space partitioning for the sharded ORAM subsystem.
//
// The proxy's KeyDirectory allocates dense BlockIds, so the router stripes
// them across K shards: global id g lives on shard g mod K as local id
// g div K. For a dense id space this striping is a perfect hash — every
// shard's local id space is itself dense (so each shard's position map stays
// a flat array), allocation order spreads new keys round-robin across
// shards, and the mapping is stateless, which keeps it out of the recovery
// checkpoints entirely.
//
// Which shard a request routes to is a deterministic function of the block
// id, i.e. of the *workload*. The routing therefore must never be visible to
// the adversary on its own: ShardedOramSet pads every shard's sub-batch to
// the same fixed size, so the per-shard request counts the storage server
// observes are workload independent (see sharded_oram_set.h).
#ifndef OBLADI_SRC_SHARD_SHARD_ROUTER_H_
#define OBLADI_SRC_SHARD_SHARD_ROUTER_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/oram/config.h"

namespace obladi {

class ShardRouter {
 public:
  explicit ShardRouter(uint32_t num_shards) : k_(num_shards == 0 ? 1 : num_shards) {}

  uint32_t num_shards() const { return k_; }

  uint32_t ShardOf(BlockId id) const { return static_cast<uint32_t>(id % k_); }
  BlockId LocalId(BlockId id) const { return id / k_; }
  BlockId GlobalId(uint32_t shard, BlockId local) const {
    return local * k_ + shard;
  }

 private:
  uint32_t k_;
};

// Geometry of a sharded deployment: K independent Ring ORAM trees, each
// sized for its slice of the key space, laid out contiguously in one bucket
// namespace (shard i owns buckets [i*B, (i+1)*B) of the backing store).
struct ShardLayout {
  uint32_t num_shards = 1;
  uint64_t global_capacity = 0;
  RingOramConfig shard_config;  // per-shard tree parameters

  // Derive the per-shard tree from the global configuration. K=1 uses the
  // global config unchanged (hand-tuned parameters survive); K>1 re-derives
  // (S, A, L, stash bound) from the analytic model for the smaller capacity.
  static ShardLayout Make(const RingOramConfig& global, uint32_t num_shards) {
    ShardLayout layout;
    layout.num_shards = num_shards == 0 ? 1 : num_shards;
    layout.global_capacity = global.capacity;
    if (layout.num_shards == 1) {
      layout.shard_config = global;
      return layout;
    }
    uint64_t per_shard =
        (global.capacity + layout.num_shards - 1) / layout.num_shards;
    if (per_shard == 0) {
      per_shard = 1;
    }
    layout.shard_config =
        RingOramConfig::ForCapacity(per_shard, global.z, global.block_payload_size);
    layout.shard_config.authenticated = global.authenticated;
    return layout;
  }

  uint64_t shard_capacity() const { return shard_config.capacity; }
  uint32_t total_buckets() const {
    return num_shards * shard_config.num_buckets();
  }
  BucketIndex bucket_offset(uint32_t shard) const {
    return shard * shard_config.num_buckets();
  }

  // Per-shard config: identical trees, but each shard authenticates its
  // ciphertexts against its global bucket range so the (shared-key) MAC
  // binds which shard a ciphertext belongs to.
  RingOramConfig ConfigForShard(uint32_t shard) const {
    RingOramConfig cfg = shard_config;
    cfg.aad_bucket_offset = bucket_offset(shard);
    return cfg;
  }
};

}  // namespace obladi

#endif  // OBLADI_SRC_SHARD_SHARD_ROUTER_H_
