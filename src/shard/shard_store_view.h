// A bucket-namespace window over a shared BucketStore.
//
// Each Ring ORAM shard addresses buckets [0, B); the view translates that to
// [offset, offset + B) of the backing store, so K shards can share one
// storage deployment (one DynamoDB table, one memory store in tests) without
// seeing each other's buckets. Batched reads/writes are translated and
// forwarded as batches, so a latency-injecting backend still charges one
// round trip per batched request rather than per slot.
#ifndef OBLADI_SRC_SHARD_SHARD_STORE_VIEW_H_
#define OBLADI_SRC_SHARD_SHARD_STORE_VIEW_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/storage/bucket_store.h"

namespace obladi {

class ShardStoreView : public BucketStore {
 public:
  ShardStoreView(std::shared_ptr<BucketStore> base, BucketIndex offset,
                 size_t num_buckets)
      : base_(std::move(base)), offset_(offset), num_buckets_(num_buckets) {}

  StatusOr<Bytes> ReadSlot(BucketIndex bucket, uint32_t version, SlotIndex slot) override {
    OBLADI_RETURN_IF_ERROR(CheckRange(bucket));
    return base_->ReadSlot(offset_ + bucket, version, slot);
  }

  Status WriteBucket(BucketIndex bucket, uint32_t version, std::vector<Bytes> slots) override {
    OBLADI_RETURN_IF_ERROR(CheckRange(bucket));
    return base_->WriteBucket(offset_ + bucket, version, std::move(slots));
  }

  std::vector<StatusOr<Bytes>> ReadSlotsBatch(const std::vector<SlotRef>& refs) override {
    std::vector<SlotRef> translated;
    translated.reserve(refs.size());
    for (const SlotRef& ref : refs) {
      translated.push_back(SlotRef{offset_ + ref.bucket, ref.version, ref.slot});
    }
    return base_->ReadSlotsBatch(translated);
  }

  Status WriteBucketsBatch(std::vector<BucketImage> images) override {
    for (BucketImage& image : images) {
      OBLADI_RETURN_IF_ERROR(CheckRange(image.bucket));
      image.bucket += offset_;
    }
    return base_->WriteBucketsBatch(std::move(images));
  }

  Status TruncateBucket(BucketIndex bucket, uint32_t keep_from_version) override {
    OBLADI_RETURN_IF_ERROR(CheckRange(bucket));
    return base_->TruncateBucket(offset_ + bucket, keep_from_version);
  }

  Status TruncateBucketsBatch(const std::vector<TruncateRef>& refs) override {
    std::vector<TruncateRef> translated;
    translated.reserve(refs.size());
    for (const TruncateRef& ref : refs) {
      OBLADI_RETURN_IF_ERROR(CheckRange(ref.bucket));
      translated.push_back(TruncateRef{offset_ + ref.bucket, ref.keep_from_version});
    }
    return base_->TruncateBucketsBatch(translated);
  }

  // XOR path reads translate per slot ref and forward as one batch, so a
  // shard's whole read wave stays a single (bandwidth-reduced) round trip
  // against a shared remote store.
  std::vector<StatusOr<PathXorResult>> ReadPathsXor(const std::vector<PathSlots>& paths,
                                                    uint32_t header_bytes,
                                                    uint32_t trailer_bytes) override {
    std::vector<PathSlots> translated(paths);
    for (PathSlots& path : translated) {
      for (SlotRef& ref : path.slots) {
        if (ref.bucket >= num_buckets_) {
          return std::vector<StatusOr<PathXorResult>>(
              paths.size(), Status::InvalidArgument("bucket index outside shard view"));
        }
        ref.bucket += offset_;
      }
    }
    return base_->ReadPathsXor(translated, header_bytes, trailer_bytes);
  }

  void ReadPathsXorAsync(std::vector<PathSlots> paths, uint32_t header_bytes,
                         uint32_t trailer_bytes, ReadPathsXorDone done) override {
    for (PathSlots& path : paths) {
      for (SlotRef& ref : path.slots) {
        if (ref.bucket >= num_buckets_) {
          done(std::vector<StatusOr<PathXorResult>>(
              paths.size(), Status::InvalidArgument("bucket index outside shard view")));
          return;
        }
        ref.bucket += offset_;
      }
    }
    base_->ReadPathsXorAsync(std::move(paths), header_bytes, trailer_bytes, std::move(done));
  }

  // Async submissions translate like their synchronous twins, so K shards
  // over one remote store all overlap on the shared event loop.
  bool SupportsAsyncBatches() const override { return base_->SupportsAsyncBatches(); }

  void ReadSlotsBatchAsync(std::vector<SlotRef> refs, ReadSlotsDone done) override {
    for (SlotRef& ref : refs) {
      if (ref.bucket >= num_buckets_) {
        std::vector<StatusOr<Bytes>> out(
            refs.size(), Status::InvalidArgument("bucket index outside shard view"));
        done(std::move(out));
        return;
      }
      ref.bucket += offset_;
    }
    base_->ReadSlotsBatchAsync(std::move(refs), std::move(done));
  }

  void WriteBucketsBatchAsync(std::vector<BucketImage> images, WriteBucketsDone done) override {
    for (BucketImage& image : images) {
      if (image.bucket >= num_buckets_) {
        done(Status::InvalidArgument("bucket index outside shard view"));
        return;
      }
      image.bucket += offset_;
    }
    base_->WriteBucketsBatchAsync(std::move(images), std::move(done));
  }

  size_t num_buckets() const override { return num_buckets_; }

  // Replication hooks forward untranslated: K views share ONE replica set,
  // and the hooks are idempotent (reporting the same retired epoch or
  // kicking the same heal pass K times is harmless), so the proxy may call
  // them through any or all views.
  ReplicationStats replication_stats() override { return base_->replication_stats(); }
  void NoteEpochRetired(EpochId epoch) override { base_->NoteEpochRetired(epoch); }
  Status TryHealReplicas() override { return base_->TryHealReplicas(); }

 private:
  Status CheckRange(BucketIndex bucket) const {
    if (bucket >= num_buckets_) {
      return Status::InvalidArgument("bucket index outside shard view");
    }
    return Status::Ok();
  }

  std::shared_ptr<BucketStore> base_;
  BucketIndex offset_;
  size_t num_buckets_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_SHARD_SHARD_STORE_VIEW_H_
