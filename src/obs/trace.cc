#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace obladi {
namespace {

void AppendEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

// One Chrome trace-event object (no separators) — shared by the batch dump
// and the continuous stream so both stay loadable by the same viewers.
void AppendEventJson(std::string& out, const ObsEvent& ev) {
  char buf[256];
  double ts_us = static_cast<double>(ev.ts_ns) / 1e3;
  switch (ev.kind) {
    case ObsEvent::Kind::kSpan: {
      double dur_us = static_cast<double>(ev.dur_ns) / 1e3;
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                    ev.tid, ts_us, dur_us);
      out += buf;
      break;
    }
    case ObsEvent::Kind::kInstant:
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                    ev.tid, ts_us);
      out += buf;
      break;
    case ObsEvent::Kind::kCounter:
      std::snprintf(buf, sizeof(buf), "{\"ph\":\"C\",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                    ev.tid, ts_us);
      out += buf;
      break;
  }
  out += ",\"cat\":\"";
  AppendEscaped(out, ev.category != nullptr ? ev.category : "obs");
  out += "\",\"name\":\"";
  AppendEscaped(out, ev.name != nullptr ? ev.name : "?");
  out.push_back('"');
  if (ev.kind == ObsEvent::Kind::kCounter) {
    out += ",\"args\":{\"value\":";
    out += std::to_string(ev.arg);
    out += "}";
  } else if (ev.has_arg) {
    out += ",\"args\":{\"v\":";
    out += std::to_string(ev.arg);
    out += "}";
  }
  out.push_back('}');
}

}  // namespace

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // never destroyed: rings may outlive main
  return *tracer;
}

void Tracer::Enable(size_t ring_capacity) {
  ring_capacity_.store(std::max<size_t>(ring_capacity, 16), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

Tracer::Ring* Tracer::ThisThreadRing() {
  // One registered ring per thread per process lifetime. The registry holds
  // a second shared_ptr, so records survive thread exit until shutdown.
  static thread_local std::shared_ptr<Ring>* tl_ring_slot = nullptr;
  if (tl_ring_slot == nullptr) {
    auto ring = std::make_shared<Ring>();
    ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    ring->events.reserve(ring_capacity_.load(std::memory_order_relaxed));
    {
      std::lock_guard<std::mutex> lk(registry_mu_);
      rings_.push_back(ring);
    }
    // Leaked intentionally (one pointer per thread): a destructor running at
    // thread exit could race a concurrent Collect() holding the shared_ptr.
    tl_ring_slot = new std::shared_ptr<Ring>(std::move(ring));
  }
  return tl_ring_slot->get();
}

void Tracer::Push(const ObsEvent& ev) {
  Ring* ring = ThisThreadRing();
  ObsEvent copy = ev;
  copy.tid = ring->tid;
  {
    std::lock_guard<std::mutex> lk(ring->mu);
    size_t cap = std::max(ring->events.capacity(), size_t{16});
    if (ring->events.size() < cap) {
      ring->events.push_back(copy);
      ring->next = ring->events.size() % cap;
    } else {
      ring->events[ring->next] = copy;
      ring->next = (ring->next + 1) % cap;
      ring->wrapped = true;
    }
  }
  if (streaming_.load(std::memory_order_relaxed)) {
    // Rendered outside stream_mu_ so concurrent pushers only serialize on
    // the (stdio-buffered) write itself.
    std::string line;
    line.reserve(128);
    AppendEventJson(line, copy);
    line.push_back('\n');
    std::lock_guard<std::mutex> slk(stream_mu_);
    if (stream_ != nullptr) {
      if (!stream_first_event_) {
        std::fputc(',', stream_);
      }
      stream_first_event_ = false;
      std::fwrite(line.data(), 1, line.size(), stream_);
    }
  }
}

void Tracer::RecordSpan(const char* category, const char* name, uint64_t start_ns,
                        uint64_t dur_ns) {
  if (!enabled()) {
    return;
  }
  ObsEvent ev;
  ev.category = category;
  ev.name = name;
  ev.kind = ObsEvent::Kind::kSpan;
  ev.ts_ns = start_ns;
  ev.dur_ns = dur_ns;
  Push(ev);
}

void Tracer::RecordSpanArg(const char* category, const char* name, uint64_t start_ns,
                           uint64_t dur_ns, uint64_t arg) {
  if (!enabled()) {
    return;
  }
  ObsEvent ev;
  ev.category = category;
  ev.name = name;
  ev.kind = ObsEvent::Kind::kSpan;
  ev.ts_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.arg = arg;
  ev.has_arg = true;
  Push(ev);
}

void Tracer::RecordInstant(const char* category, const char* name) {
  if (!enabled()) {
    return;
  }
  ObsEvent ev;
  ev.category = category;
  ev.name = name;
  ev.kind = ObsEvent::Kind::kInstant;
  ev.ts_ns = NowNanos();
  Push(ev);
}

void Tracer::RecordCounter(const char* category, const char* name, uint64_t value) {
  if (!enabled()) {
    return;
  }
  ObsEvent ev;
  ev.category = category;
  ev.name = name;
  ev.kind = ObsEvent::Kind::kCounter;
  ev.ts_ns = NowNanos();
  ev.arg = value;
  ev.has_arg = true;
  Push(ev);
}

void Tracer::SetThreadName(const char* name) {
  Ring* ring = ThisThreadRing();
  std::lock_guard<std::mutex> lk(ring->mu);
  ring->thread_name = name;
}

std::vector<ObsEvent> Tracer::Collect() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lk(registry_mu_);
    rings = rings_;
  }
  std::vector<ObsEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lk(ring->mu);
    out.insert(out.end(), ring->events.begin(), ring->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const ObsEvent& a, const ObsEvent& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

size_t Tracer::CollectedCount() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lk(registry_mu_);
    rings = rings_;
  }
  size_t n = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lk(ring->mu);
    n += ring->events.size();
  }
  return n;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lk(registry_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<ObsEvent> events = Collect();
  // Thread-name metadata rows.
  std::vector<std::pair<uint32_t, const char*>> names;
  {
    std::lock_guard<std::mutex> lk(registry_mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> rlk(ring->mu);
      if (ring->thread_name != nullptr) {
        names.emplace_back(ring->tid, ring->thread_name);
      }
    }
  }

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : names) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(out, name);
    out += "\"}}";
  }
  for (const ObsEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    AppendEventJson(out, ev);
  }
  out += "]}";
  return out;
}

Status Tracer::StartStreaming(const std::string& path) {
  std::lock_guard<std::mutex> lk(stream_mu_);
  if (stream_ != nullptr) {
    return Status::Internal("trace streaming already active");
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace stream file: " + path);
  }
  std::fputs("[\n", f);
  stream_ = f;
  stream_first_event_ = true;
  streaming_.store(true, std::memory_order_release);
  return Status::Ok();
}

void Tracer::StopStreaming() {
  streaming_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lk(stream_mu_);
  if (stream_ == nullptr) {
    return;
  }
  // Close the array so strict JSON parsers accept the file too.
  std::fputs("\n]\n", stream_);
  std::fclose(stream_);
  stream_ = nullptr;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::string json = ChromeTraceJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path);
  }
  size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (wrote != json.size()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace obladi
