// Observability configuration, embedded in ObladiConfig (and mirrored by
// StorageServerOptions for the storage tier). Everything defaults off or
// cheap: with `trace` false a span costs one relaxed atomic load, metrics
// are pull-only (no hot-path writes beyond the counters the system already
// kept), and the watchdog adds one mutexed tally per per-shard sub-batch.
#ifndef OBLADI_SRC_OBS_OBS_CONFIG_H_
#define OBLADI_SRC_OBS_OBS_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace obladi {

struct ObsConfig {
  // Span tracer (process-global flight recorder). Enabling here arms the
  // global Tracer at proxy construction.
  bool trace = false;
  size_t trace_ring_capacity = 1u << 15;  // records per thread

  // Non-empty: stream every span/instant/counter to this file as it is
  // recorded (Chrome trace JSON array; the trailing "]" is optional for
  // Perfetto, so the file is loadable even after a crash). The flight
  // recorder's rings keep only the newest window; the stream keeps all of
  // it, at the cost of a mutexed buffered write per record.
  std::string trace_stream_path;

  // Metrics registry on the proxy: absorbs ObladiStats / RingOramStats /
  // the watchdog verdicts behind one scrapeable snapshot.
  bool metrics = false;

  // Tiny HTTP/1.0 listener serving /metrics (Prometheus text), /healthz,
  // and /trace (Chrome trace JSON). Requires `metrics`.
  bool admin_listener = false;
  std::string admin_host = "127.0.0.1";
  uint16_t admin_port = 0;  // 0 = ephemeral; read back via admin_port()

  // Oblivious trace-shape watchdog.
  bool watchdog = false;
  bool watchdog_abort = false;          // abort() on any violation
  double watchdog_byte_tolerance = 0.35;  // 0 disables the wire-byte band
  size_t watchdog_byte_warmup_epochs = 2;
};

}  // namespace obladi

#endif  // OBLADI_SRC_OBS_OBS_CONFIG_H_
