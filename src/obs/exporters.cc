#include "src/obs/exporters.h"

namespace obladi {

void ExportObladiStats(MetricsSink& sink, const ObladiStats& s,
                       const MetricLabels& labels) {
  sink.Counter("obladi_epochs_total", labels, s.epochs, "epochs closed");
  sink.Counter("obladi_read_batches_total", labels, s.read_batches, "read batches dispatched");
  sink.Counter("obladi_cache_hits_total", labels, s.cache_hits,
               "reads served from the version cache");
  sink.Counter("obladi_oram_fetches_total", labels, s.oram_fetches,
               "deduplicated batch slots used");
  sink.Counter("obladi_fetch_dedups_total", labels, s.fetch_dedups,
               "reads coalesced onto an in-flight fetch");
  sink.Counter("obladi_batch_overflow_aborts_total", labels, s.batch_overflow_aborts,
               "transactions aborted on batch overflow");
  sink.Counter("obladi_recoveries_total", labels, s.recoveries, "crash recoveries");
  sink.Counter("obladi_epochs_overlapped_total", labels, s.epochs_overlapped,
               "epochs that ran while their predecessor was still retiring");
  sink.Counter("obladi_retire_stall_us_total", labels, s.retire_stall_us,
               "close-step time spent waiting on the previous retirement");
  sink.Gauge("obladi_max_inflight_stash_blocks", labels,
             static_cast<double>(s.max_inflight_stash_blocks),
             "peak stash + retiring blocks");
  sink.Counter("sched_overlapped_accesses_total", labels, s.sched_overlapped_accesses,
               "reads answered by the scheduler's read stage before its batch finished");
  sink.Counter("stash_budget_stalls_total", labels, s.stash_budget_stalls,
               "batch dispatches stalled on the max_stash_blocks budget");
  sink.Counter("stash_budget_stall_us_total", labels, s.stash_budget_stall_us,
               "time spent in stash-budget stalls");
  sink.Counter("obladi_txn_begun_total", labels, s.txn_begun, "transactions begun");
  sink.Counter("obladi_txn_committed_total", labels, s.txn_committed,
               "transactions committed");
  sink.Counter("obladi_txn_aborted_total", labels, s.txn_aborted,
               "transactions aborted (all causes)");
  sink.Gauge("obladi_aborts_per_committed_txn", labels, s.aborts_per_committed_txn,
             "abort/commit ratio");
}

void ExportRingOramStats(MetricsSink& sink, const RingOramStats& s,
                         const MetricLabels& labels) {
  sink.Counter("oram_logical_accesses_total", labels, s.logical_accesses,
               "logical block accesses (real + padding)");
  sink.Counter("oram_physical_slot_reads_total", labels, s.physical_slot_reads,
               "slot reads issued to storage");
  sink.Counter("oram_physical_bucket_writes_total", labels, s.physical_bucket_writes,
               "bucket writes issued to storage");
  sink.Counter("oram_planned_bucket_rewrites_total", labels, s.planned_bucket_rewrites,
               "pre-dedup bucket rewrite count");
  sink.Counter("oram_evictions_total", labels, s.evictions, "scheduled evictions");
  sink.Counter("oram_early_reshuffles_total", labels, s.early_reshuffles,
               "early reshuffles");
  sink.Counter("oram_buffered_bucket_skips_total", labels, s.buffered_bucket_skips,
               "path levels served from the epoch buffer");
  sink.Counter("oram_retiring_bucket_skips_total", labels, s.retiring_bucket_skips,
               "path levels served from a retiring bucket");
  sink.Counter("oram_xor_path_reads_total", labels, s.xor_path_reads,
               "path reads fetched via kReadPathsXor");
  sink.Counter("oram_stash_cache_skips_total", labels, s.stash_cache_skips,
               "accesses skipped by cache_all_stash");
  sink.Counter("oram_flush_plan_us_total", labels, s.flush_plan_us,
               "epoch flush planning time");
  sink.Counter("oram_materialize_us_total", labels, s.materialize_us,
               "epoch encrypt + bucket write time");
  sink.Counter("oram_write_drain_us_total", labels, s.write_drain_us,
               "epoch write drain wait time");
}

void ExportNetworkStats(MetricsSink& sink, const NetworkStats& s,
                        const MetricLabels& labels) {
  sink.Counter("net_reads_total", labels, s.reads.load(std::memory_order_relaxed),
               "storage read ops");
  sink.Counter("net_writes_total", labels, s.writes.load(std::memory_order_relaxed),
               "storage write ops");
  sink.Counter("net_round_trips_total", labels,
               s.round_trips.load(std::memory_order_relaxed), "storage round trips");
  sink.Counter("net_bytes_read_total", labels,
               s.bytes_read.load(std::memory_order_relaxed), "payload bytes read");
  sink.Counter("net_bytes_written_total", labels,
               s.bytes_written.load(std::memory_order_relaxed), "payload bytes written");
  sink.Counter("net_bytes_sent_total", labels,
               s.bytes_sent.load(std::memory_order_relaxed), "wire bytes sent");
  sink.Counter("net_bytes_received_total", labels,
               s.bytes_received.load(std::memory_order_relaxed), "wire bytes received");
  sink.Counter("net_reconnects_total", labels,
               s.reconnects.load(std::memory_order_relaxed),
               "connections re-established after failure");
  sink.Counter("deadline_exceeded_total", labels,
               s.deadline_exceeded.load(std::memory_order_relaxed),
               "requests that expired before a response landed");
  sink.Counter("net_retries_total", labels, s.retries.load(std::memory_order_relaxed),
               "retry-policy resubmissions");
  sink.Counter("breaker_open_total", labels,
               s.breaker_open.load(std::memory_order_relaxed),
               "circuit-breaker open transitions");
  sink.Counter("net_heartbeats_sent_total", labels,
               s.heartbeats_sent.load(std::memory_order_relaxed),
               "application-level heartbeat pings sent");
  sink.Counter("net_heartbeat_failures_total", labels,
               s.heartbeat_failures.load(std::memory_order_relaxed),
               "heartbeats that expired (connection torn down)");
}

void ExportStorageServerStats(MetricsSink& sink, const StorageServerStats& s,
                              const MetricLabels& labels) {
  sink.Counter("server_connections_accepted_total", labels,
               s.connections_accepted.load(std::memory_order_relaxed),
               "TCP connections accepted");
  sink.Counter("server_requests_served_total", labels,
               s.requests_served.load(std::memory_order_relaxed), "RPCs served");
  sink.Counter("server_protocol_errors_total", labels,
               s.protocol_errors.load(std::memory_order_relaxed), "protocol errors");
  sink.Counter("server_bytes_received_total", labels,
               s.bytes_received.load(std::memory_order_relaxed), "wire bytes received");
  sink.Counter("server_bytes_sent_total", labels,
               s.bytes_sent.load(std::memory_order_relaxed), "wire bytes sent");
  sink.Counter("server_out_of_order_replies_total", labels,
               s.out_of_order_replies.load(std::memory_order_relaxed),
               "responses that overtook an earlier request's response");
}

void ExportHistogramAs(MetricsSink& sink, const std::string& name, const Histogram& h,
                       const MetricLabels& labels) {
  sink.HistogramFamily(name, labels, h.BucketCounts(), h.Summary(), "");
}

}  // namespace obladi
