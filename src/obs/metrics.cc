#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace obladi {
namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; anything else becomes '_'.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  return out;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string LabelBlock(const MetricLabels& labels, const char* extra_key = nullptr,
                       const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += SanitizeName(k);
    out += "=\"";
    out += EscapeLabelValue(v);
    out.push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

class PrometheusSink : public MetricsSink {
 public:
  void Counter(const std::string& name, const MetricLabels& labels, uint64_t value,
               const std::string& help) override {
    std::string n = SanitizeName(name);
    Header(n, "counter", help);
    out_ += n + LabelBlock(labels) + " " + std::to_string(value) + "\n";
  }
  void Gauge(const std::string& name, const MetricLabels& labels, double value,
             const std::string& help) override {
    std::string n = SanitizeName(name);
    Header(n, "gauge", help);
    out_ += n + LabelBlock(labels) + " " + FormatDouble(value) + "\n";
  }
  void Summary(const std::string& name, const MetricLabels& labels,
               const HistogramSummary& s, const std::string& help) override {
    std::string n = SanitizeName(name);
    Header(n, "summary", help);
    out_ += n + LabelBlock(labels, "quantile", "0.5") + " " + std::to_string(s.p50) + "\n";
    out_ += n + LabelBlock(labels, "quantile", "0.9") + " " + std::to_string(s.p90) + "\n";
    out_ += n + LabelBlock(labels, "quantile", "0.99") + " " + std::to_string(s.p99) + "\n";
    out_ +=
        n + LabelBlock(labels, "quantile", "0.999") + " " + std::to_string(s.p999) + "\n";
    out_ += n + "_sum" + LabelBlock(labels) + " " + std::to_string(s.sum) + "\n";
    out_ += n + "_count" + LabelBlock(labels) + " " + std::to_string(s.count) + "\n";
  }
  void HistogramFamily(const std::string& name, const MetricLabels& labels,
                       const HistogramBuckets& b, const HistogramSummary&,
                       const std::string& help) override {
    std::string n = SanitizeName(name);
    Header(n, "histogram", help);
    for (size_t i = 0; i < b.upper_bounds.size(); ++i) {
      out_ += n + "_bucket" +
              LabelBlock(labels, "le", std::to_string(b.upper_bounds[i]).c_str()) + " " +
              std::to_string(b.counts[i]) + "\n";
    }
    out_ += n + "_bucket" + LabelBlock(labels, "le", "+Inf") + " " +
            std::to_string(b.count) + "\n";
    out_ += n + "_sum" + LabelBlock(labels) + " " + std::to_string(b.sum) + "\n";
    out_ += n + "_count" + LabelBlock(labels) + " " + std::to_string(b.count) + "\n";
  }
  std::string Take() { return std::move(out_); }

 private:
  void Header(const std::string& name, const char* type, const std::string& help) {
    // Emit HELP/TYPE once per metric name (Prometheus rejects duplicates).
    if (std::find(announced_.begin(), announced_.end(), name) != announced_.end()) {
      return;
    }
    announced_.push_back(name);
    if (!help.empty()) {
      out_ += "# HELP " + name + " " + help + "\n";
    }
    out_ += "# TYPE " + name + " " + std::string(type) + "\n";
  }
  std::vector<std::string> announced_;
  std::string out_;
};

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

class JsonLinesSink : public MetricsSink {
 public:
  void Counter(const std::string& name, const MetricLabels& labels, uint64_t value,
               const std::string&) override {
    Begin(name, labels, "counter");
    out_ += ",\"value\":" + std::to_string(value) + "}\n";
  }
  void Gauge(const std::string& name, const MetricLabels& labels, double value,
             const std::string&) override {
    Begin(name, labels, "gauge");
    out_ += ",\"value\":" + FormatDouble(value) + "}\n";
  }
  void Summary(const std::string& name, const MetricLabels& labels,
               const HistogramSummary& s, const std::string&) override {
    Begin(name, labels, "summary");
    out_ += ",\"count\":" + std::to_string(s.count);
    out_ += ",\"sum\":" + std::to_string(s.sum);
    out_ += ",\"mean\":" + FormatDouble(s.mean);
    out_ += ",\"min\":" + std::to_string(s.min);
    out_ += ",\"max\":" + std::to_string(s.max);
    out_ += ",\"p50\":" + std::to_string(s.p50);
    out_ += ",\"p90\":" + std::to_string(s.p90);
    out_ += ",\"p99\":" + std::to_string(s.p99);
    out_ += ",\"p999\":" + std::to_string(s.p999) + "}\n";
  }
  void HistogramFamily(const std::string& name, const MetricLabels& labels,
                       const HistogramBuckets& b, const HistogramSummary& s,
                       const std::string&) override {
    Begin(name, labels, "histogram");
    out_ += ",\"count\":" + std::to_string(b.count);
    out_ += ",\"sum\":" + std::to_string(b.sum);
    out_ += ",\"mean\":" + FormatDouble(s.mean);
    out_ += ",\"p50\":" + std::to_string(s.p50);
    out_ += ",\"p99\":" + std::to_string(s.p99);
    out_ += ",\"buckets\":[";
    for (size_t i = 0; i < b.upper_bounds.size(); ++i) {
      if (i != 0) out_.push_back(',');
      out_ += "{\"le\":" + std::to_string(b.upper_bounds[i]) +
              ",\"count\":" + std::to_string(b.counts[i]) + "}";
    }
    out_ += "]}\n";
  }
  std::string Take() { return std::move(out_); }

 private:
  void Begin(const std::string& name, const MetricLabels& labels, const char* type) {
    out_ += "{\"metric\":\"";
    AppendJsonEscaped(out_, name);
    out_ += "\",\"type\":\"";
    out_ += type;
    out_ += "\",\"labels\":{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out_.push_back(',');
      first = false;
      out_.push_back('"');
      AppendJsonEscaped(out_, k);
      out_ += "\":\"";
      AppendJsonEscaped(out_, v);
      out_.push_back('"');
    }
    out_.push_back('}');
  }
  std::string out_;
};

}  // namespace

Counter& MetricsRegistry::GetCounter(const std::string& name, MetricLabels labels,
                                     std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : counters_) {
    if (e.name == name && e.labels == labels) {
      return *e.counter;
    }
  }
  counters_.push_back(
      {name, std::move(labels), std::move(help), std::make_unique<class Counter>()});
  return *counters_.back().counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, MetricLabels labels,
                                 std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : gauges_) {
    if (e.name == name && e.labels == labels) {
      return *e.gauge;
    }
  }
  gauges_.push_back(
      {name, std::move(labels), std::move(help), std::make_unique<class Gauge>()});
  return *gauges_.back().gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, MetricLabels labels,
                                         std::string help) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : hists_) {
    if (e.name == name && e.labels == labels) {
      return *e.hist;
    }
  }
  hists_.push_back(
      {name, std::move(labels), std::move(help), std::make_unique<Histogram>()});
  return *hists_.back().hist;
}

void MetricsRegistry::AddSource(Source source) {
  std::lock_guard<std::mutex> lk(mu_);
  sources_.push_back(std::move(source));
}

void MetricsRegistry::CollectInto(MetricsSink& sink) const {
  // Snapshot the entry lists, then emit without mu_: sources may call back
  // into stats() methods that take other locks (and instrument pointers are
  // stable once created).
  std::vector<std::tuple<std::string, MetricLabels, std::string, const class Counter*>> cs;
  std::vector<std::tuple<std::string, MetricLabels, std::string, const class Gauge*>> gs;
  std::vector<std::tuple<std::string, MetricLabels, std::string, const Histogram*>> hs;
  std::vector<Source> sources;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& e : counters_) {
      cs.emplace_back(e.name, e.labels, e.help, e.counter.get());
    }
    for (const auto& e : gauges_) {
      gs.emplace_back(e.name, e.labels, e.help, e.gauge.get());
    }
    for (const auto& e : hists_) {
      hs.emplace_back(e.name, e.labels, e.help, e.hist.get());
    }
    sources = sources_;
  }
  for (const auto& [name, labels, help, c] : cs) {
    sink.Counter(name, labels, c->Value(), help);
  }
  for (const auto& [name, labels, help, g] : gs) {
    sink.Gauge(name, labels, g->Value(), help);
  }
  for (const auto& [name, labels, help, h] : hs) {
    sink.HistogramFamily(name, labels, h->BucketCounts(), h->Summary(), help);
  }
  for (const auto& source : sources) {
    source(sink);
  }
}

std::string MetricsRegistry::PrometheusText() const {
  PrometheusSink sink;
  CollectInto(sink);
  return sink.Take();
}

std::string MetricsRegistry::JsonLines() const {
  JsonLinesSink sink;
  CollectInto(sink);
  return sink.Take();
}

Status MetricsRegistry::WriteJsonLines(const std::string& path) const {
  std::string body = JsonLines();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics file: " + path);
  }
  size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (wrote != body.size()) {
    return Status::Internal("short write to metrics file: " + path);
  }
  return Status::Ok();
}

}  // namespace obladi
