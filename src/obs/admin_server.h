// Minimal HTTP/1.0 admin listener for live scrapes: GET /metrics returns
// the registry's Prometheus text, GET /healthz returns "ok", and any
// handler registered with AddHandler serves its path. One request per
// connection (Connection: close), served sequentially by a single accept
// thread — scrapes are rare and the handlers snapshot, so there is nothing
// to parallelize and no worker pool to manage.
#ifndef OBLADI_SRC_OBS_ADMIN_SERVER_H_
#define OBLADI_SRC_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/net/socket.h"
#include "src/obs/metrics.h"

namespace obladi {

struct AdminServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back via port()
};

class AdminServer {
 public:
  // `registry` may be nullptr (then /metrics 404s); it must outlive the
  // server.
  AdminServer(AdminServerOptions options, const MetricsRegistry* registry);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Registers an extra GET endpoint. The producer runs on the accept
  // thread per request. Call before Start().
  void AddHandler(std::string path, std::string content_type,
                  std::function<std::string()> producer);

 private:
  void ServeLoop();
  void ServeOne(TcpSocket sock);

  AdminServerOptions options_;
  const MetricsRegistry* registry_;
  struct Handler {
    std::string path;
    std::string content_type;
    std::function<std::string()> producer;
  };
  std::vector<Handler> handlers_;

  TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace obladi

#endif  // OBLADI_SRC_OBS_ADMIN_SERVER_H_
