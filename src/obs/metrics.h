// Unified metrics registry: counters, gauges, and histogram summaries with
// labels, rendered as Prometheus text exposition or JSON lines.
//
// Two feeding styles coexist:
//   - Registered instruments (GetCounter/GetGauge/GetHistogram): owned by
//     the registry, updated with single atomic ops on the hot path.
//   - Pull sources (AddSource): a callback invoked at snapshot time that
//     reads an existing stats struct (ObladiStats, NetworkStats, ...) under
//     that struct's own locking and emits samples into a MetricsSink. This
//     absorbs the legacy counter structs without duplicating every counter
//     on the hot path — each source's samples are internally consistent
//     because the source copies its struct once per scrape.
//
// The registry is instance-based (no global singleton): a proxy, a storage
// server, and a bench can each own one without cross-talk between tests.
#ifndef OBLADI_SRC_OBS_METRICS_H_
#define OBLADI_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"

namespace obladi {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    // No fetch_add on atomic<double> pre-C++20 on all targets; CAS loop.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Receives one scrape's samples. Implementations render Prometheus text or
// JSON; sources and registered instruments both emit through this.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void Counter(const std::string& name, const MetricLabels& labels,
                       uint64_t value, const std::string& help) = 0;
  virtual void Gauge(const std::string& name, const MetricLabels& labels, double value,
                     const std::string& help) = 0;
  virtual void Summary(const std::string& name, const MetricLabels& labels,
                       const HistogramSummary& summary, const std::string& help) = 0;
  // Native histogram family (fixed cumulative buckets + sum + count). The
  // default keeps third-party sinks working by degrading to the summary.
  virtual void HistogramFamily(const std::string& name, const MetricLabels& labels,
                               const HistogramBuckets& buckets,
                               const HistogramSummary& summary, const std::string& help) {
    (void)buckets;
    Summary(name, labels, summary, help);
  }
};

class MetricsRegistry {
 public:
  using Source = std::function<void(MetricsSink&)>;

  // Instruments are created on first use and live as long as the registry;
  // repeated calls with the same (name, labels) return the same object.
  Counter& GetCounter(const std::string& name, MetricLabels labels = {},
                      std::string help = "");
  Gauge& GetGauge(const std::string& name, MetricLabels labels = {},
                  std::string help = "");
  Histogram& GetHistogram(const std::string& name, MetricLabels labels = {},
                          std::string help = "");

  void AddSource(Source source);

  // Renders one consistent scrape: registered instruments first, then each
  // source in registration order.
  std::string PrometheusText() const;
  // One JSON object per line: {"metric":..., "labels":{...}, ...values...}.
  std::string JsonLines() const;
  Status WriteJsonLines(const std::string& path) const;

  void CollectInto(MetricsSink& sink) const;

 private:
  struct CounterEntry {
    std::string name;
    MetricLabels labels;
    std::string help;
    std::unique_ptr<class Counter> counter;
  };
  struct GaugeEntry {
    std::string name;
    MetricLabels labels;
    std::string help;
    std::unique_ptr<class Gauge> gauge;
  };
  struct HistEntry {
    std::string name;
    MetricLabels labels;
    std::string help;
    std::unique_ptr<Histogram> hist;
  };

  mutable std::mutex mu_;
  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistEntry> hists_;
  std::vector<Source> sources_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_OBS_METRICS_H_
