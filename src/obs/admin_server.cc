#include "src/obs/admin_server.h"

#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace obladi {
namespace {

constexpr size_t kMaxRequestBytes = 8192;

// Reads until the header terminator (we ignore any body: every admin
// endpoint is a GET) or the size cap.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->size() < kMaxRequestBytes) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return false;
    }
    head->append(buf, static_cast<size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// "GET /metrics HTTP/1.1" -> "/metrics" (query strings stripped).
std::string ParseRequestPath(const std::string& head) {
  size_t sp1 = head.find(' ');
  if (sp1 == std::string::npos) {
    return "";
  }
  size_t sp2 = head.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    return "";
  }
  std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t q = path.find('?');
  if (q != std::string::npos) {
    path.resize(q);
  }
  return path;
}

void SendHttp(TcpSocket& sock, int code, const char* reason,
              const std::string& content_type, const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (!sock.SendAll(reinterpret_cast<const uint8_t*>(head.data()), head.size()).ok()) {
    return;
  }
  (void)sock.SendAll(reinterpret_cast<const uint8_t*>(body.data()), body.size());
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options, const MetricsRegistry* registry)
    : options_(std::move(options)), registry_(registry) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::AddHandler(std::string path, std::string content_type,
                             std::function<std::string()> producer) {
  handlers_.push_back({std::move(path), std::move(content_type), std::move(producer)});
}

Status AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("admin server already running");
  }
  auto listener = TcpListener::Listen(options_.host, options_.port);
  OBLADI_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  listener_.Shutdown();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void AdminServer::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      // Stop() shut the listener down, or a transient accept error — back
      // off instead of spinning a core on a persistent failure.
      if (running_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      continue;
    }
    ServeOne(std::move(*conn));
  }
}

void AdminServer::ServeOne(TcpSocket sock) {
  std::string head;
  if (!ReadRequestHead(sock.fd(), &head)) {
    return;
  }
  std::string path = ParseRequestPath(head);
  // Registered handlers win over the built-in endpoints, so a server can
  // enrich /healthz (the proxy adds per-replica health) without losing the
  // default for processes that never register one.
  for (const Handler& h : handlers_) {
    if (h.path == path) {
      SendHttp(sock, 200, "OK", h.content_type, h.producer());
      return;
    }
  }
  if (path == "/healthz") {
    SendHttp(sock, 200, "OK", "text/plain", "ok\n");
    return;
  }
  if (path == "/metrics" && registry_ != nullptr) {
    SendHttp(sock, 200, "OK", "text/plain; version=0.0.4", registry_->PrometheusText());
    return;
  }
  SendHttp(sock, 404, "Not Found", "text/plain", "not found\n");
}

}  // namespace obladi
