// Oblivious trace-shape watchdog: promotes the offline trace-shape tests
// into a production invariant. The sharded coordinator feeds it every
// planned per-shard sub-batch, every write-schedule advance, and every
// epoch close; the watchdog asserts, per epoch, that what the storage tier
// observed matches the configured padded shape — independent of workload:
//
//   - every per-shard read sub-batch carries exactly `read_quota` logical
//     requests (real + padding; the plan does not reveal which),
//   - every shard executes exactly `batches_per_epoch` sub-batches per
//     epoch,
//   - every shard's write schedule advances by exactly `write_quota` per
//     epoch,
//   - per-direction wire bytes per epoch stay within a tolerance band of a
//     reference epoch (path-read counts are exactly shaped, but eviction /
//     early-reshuffle traffic is stochastic — workload-independent, yet
//     not bit-identical across epochs — so bytes get a band, not equality).
//
// A deviation means the server-visible access pattern leaked workload
// information (or the padding logic regressed): the watchdog logs it,
// bumps a violation counter (scrapeable via the metrics registry), invokes
// an optional callback, and — when configured — aborts the process.
#ifndef OBLADI_SRC_OBS_WATCHDOG_H_
#define OBLADI_SRC_OBS_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace obladi {

struct WatchdogSpec {
  uint32_t num_shards = 1;
  size_t read_quota = 0;        // logical requests per shard sub-batch
  size_t batches_per_epoch = 0; // read sub-batches per shard per epoch (R)
  size_t write_quota = 0;       // schedule bumps per shard per epoch
  // Wire-byte band vs. the reference epoch (fraction; 0 disables the byte
  // check). The first epoch after warmup sets the reference.
  double wire_byte_tolerance = 0.35;
  size_t byte_warmup_epochs = 2;
  bool abort_on_violation = false;
};

class TraceShapeWatchdog {
 public:
  explicit TraceShapeWatchdog(WatchdogSpec spec);

  // One planned per-shard read sub-batch of `requests` logical slots
  // (called from the per-shard plan hook, so it sees the ORAM's actual
  // plan, not the coordinator's intent).
  void ObserveShardBatch(uint32_t shard, size_t requests);
  // The shard's write schedule advanced by `bumps`.
  void ObserveShardAdvance(uint32_t shard, size_t bumps);
  // Epoch boundary. `wire_bytes` is (sent, received) cumulative transport
  // bytes if a byte source is attached; per-epoch deltas are checked
  // against the reference epoch.
  void ObserveEpochClose();

  // Optional cumulative (bytes_sent, bytes_received) sampler, read at each
  // epoch close. Attach before traffic starts.
  void SetWireByteSource(std::function<std::pair<uint64_t, uint64_t>()> source);

  // Per-replica byte sampler. Each labeled source gets its own reference
  // band, so the oblivious-shape invariant extends to every replica's view
  // of the traffic (a primary and its replicas each see shaped streams).
  // `generation` is the replica topology generation: when it changes
  // (failover, demotion, promotion) the traffic legitimately moves between
  // replicas, so the source re-seeds its reference instead of flagging.
  struct WireByteSample {
    uint64_t sent = 0;
    uint64_t received = 0;
    uint64_t generation = 0;
  };
  void AddWireByteSource(std::string label, std::function<WireByteSample()> source);
  // Fires under the watchdog lock: keep it cheap and do not call back into
  // this watchdog from inside it.
  void SetOnViolation(std::function<void(const std::string&)> cb);

  // Crash/recovery: drop partial per-epoch tallies and skip the next byte
  // delta (recovery traffic is legitimately unshaped).
  void ResetEpoch();

  uint64_t violations() const;
  uint64_t epochs_checked() const;
  // Most recent violation messages (bounded), oldest first.
  std::vector<std::string> recent_violations() const;

 private:
  struct LabeledByteSource {
    std::string label;
    std::function<WireByteSample()> source;
    bool have_sample = false;
    WireByteSample last;
    bool have_reference = false;
    std::pair<uint64_t, uint64_t> reference{0, 0};
    uint64_t epochs_seen = 0;  // re-warms after every topology change
  };

  void ViolationLocked(const std::string& message);
  void CheckLabeledSourcesLocked();

  WatchdogSpec spec_;
  mutable std::mutex mu_;
  std::vector<size_t> batches_this_epoch_;  // per shard
  std::vector<size_t> bumps_this_epoch_;    // per shard
  std::function<std::pair<uint64_t, uint64_t>()> byte_source_;
  std::vector<LabeledByteSource> labeled_sources_;
  std::function<void(const std::string&)> on_violation_;
  bool have_byte_sample_ = false;
  std::pair<uint64_t, uint64_t> last_byte_sample_{0, 0};
  bool have_reference_ = false;
  std::pair<uint64_t, uint64_t> reference_delta_{0, 0};
  uint64_t epochs_checked_ = 0;
  uint64_t byte_epochs_seen_ = 0;
  uint64_t violations_ = 0;
  std::vector<std::string> recent_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_OBS_WATCHDOG_H_
