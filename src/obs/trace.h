// Flight-recorder span tracer: thread-local ring buffers of fixed-size
// records, written with one uncontended mutex acquire and two monotonic
// clock reads per span (~100 ns). Disabled, a span costs one relaxed
// atomic load — instrumentation can stay compiled into hot paths.
//
// Records are kept per thread in a bounded ring (flight-recorder
// semantics: when the ring wraps, the oldest records are overwritten), so
// a long run retains the most recent window instead of growing without
// bound. Rings of exited threads are retained by the global registry so a
// post-run dump still sees their spans.
//
// Span/instant/counter names and categories MUST be string literals (or
// otherwise outlive the tracer): records store the pointers, never copies.
//
// The dump is Chrome trace-event JSON ("traceEvents" array, ts/dur in
// microseconds) — load it at https://ui.perfetto.dev or chrome://tracing.
#ifndef OBLADI_SRC_OBS_TRACE_H_
#define OBLADI_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace obladi {

struct ObsEvent {
  enum class Kind : uint8_t { kSpan, kInstant, kCounter };
  const char* category = nullptr;  // static string
  const char* name = nullptr;      // static string
  Kind kind = Kind::kSpan;
  uint32_t tid = 0;       // tracer-assigned dense thread id
  uint64_t ts_ns = 0;     // start (spans) or occurrence time
  uint64_t dur_ns = 0;    // spans only
  uint64_t arg = 0;       // epoch id, batch index, counter value, ...
  bool has_arg = false;
};

// Process-global singleton. Enable() arms recording; until then every
// Record* call is a relaxed load + branch.
class Tracer {
 public:
  static Tracer& Get();

  // Arms recording. ring_capacity is per-thread (records, not bytes);
  // rings created while enabled use the capacity in force at creation.
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void RecordSpan(const char* category, const char* name, uint64_t start_ns,
                  uint64_t dur_ns);
  void RecordSpanArg(const char* category, const char* name, uint64_t start_ns,
                     uint64_t dur_ns, uint64_t arg);
  void RecordInstant(const char* category, const char* name);
  void RecordCounter(const char* category, const char* name, uint64_t value);

  // Names this thread's ring for the trace viewer ("retirer", "pacer", ...).
  // Must be a static string.
  void SetThreadName(const char* name);

  // Merged snapshot of every ring (including exited threads), sorted by
  // start timestamp. Safe while recording continues.
  std::vector<ObsEvent> Collect() const;
  size_t CollectedCount() const;

  // Chrome trace-event JSON of Collect().
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  // Drops all buffered records (ring registrations survive).
  void Clear();

  // Continuous streaming: every record pushed while streaming is armed is
  // also appended to `path` as Chrome trace JSON (array form; the trailing
  // "]" is left off so the file stays loadable after a crash — Perfetto
  // accepts it). Streaming is independent of the rings: Clear() does not
  // rewind the stream, and the ring capacity does not bound it.
  Status StartStreaming(const std::string& path);
  void StopStreaming();  // flushes and closes; idempotent
  bool streaming() const { return streaming_.load(std::memory_order_relaxed); }

  static constexpr size_t kDefaultRingCapacity = 1u << 15;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<ObsEvent> events;  // size == capacity once full
    size_t next = 0;
    bool wrapped = false;
    uint32_t tid = 0;
    const char* thread_name = nullptr;
  };

  Tracer() = default;
  Ring* ThisThreadRing();
  void Push(const ObsEvent& ev);

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> ring_capacity_{kDefaultRingCapacity};
  std::atomic<uint32_t> next_tid_{1};
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;

  // Stream sink. streaming_ is the cheap gate checked in Push; stream_mu_
  // serializes writers and guards stream_ against StopStreaming.
  std::atomic<bool> streaming_{false};
  std::mutex stream_mu_;
  FILE* stream_ = nullptr;
  bool stream_first_event_ = true;
};

// RAII span: stamps the start on construction, records on destruction.
// When the tracer is disabled at construction the destructor is a no-op
// (the span does not resurrect if tracing flips on mid-scope).
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name)
      : category_(category), name_(Tracer::Get().enabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? NowNanos() : 0) {}
  SpanGuard(const char* category, const char* name, uint64_t arg)
      : SpanGuard(category, name) {
    set_arg(arg);
  }
  ~SpanGuard() {
    if (name_ == nullptr) {
      return;
    }
    uint64_t dur = NowNanos() - start_ns_;
    if (has_arg_) {
      Tracer::Get().RecordSpanArg(category_, name_, start_ns_, dur, arg_);
    } else {
      Tracer::Get().RecordSpan(category_, name_, start_ns_, dur);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  void set_arg(uint64_t arg) {
    arg_ = arg;
    has_arg_ = true;
  }
  bool armed() const { return name_ != nullptr; }

 private:
  const char* category_;
  const char* name_;
  uint64_t start_ns_;
  uint64_t arg_ = 0;
  bool has_arg_ = false;
};

#define OBS_CONCAT_INNER(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT_INNER(a, b)
// Scope-wide span with an automatic variable name.
#define OBS_SPAN(category, name) \
  ::obladi::SpanGuard OBS_CONCAT(obs_span_, __COUNTER__)(category, name)
#define OBS_SPAN_ARG(category, name, arg) \
  ::obladi::SpanGuard OBS_CONCAT(obs_span_, __COUNTER__)(category, name, (arg))

}  // namespace obladi

#endif  // OBLADI_SRC_OBS_TRACE_H_
