#include "src/obs/watchdog.h"

#include <cstdio>
#include <cstdlib>

#include "src/obs/trace.h"

namespace obladi {

namespace {
constexpr size_t kMaxRecentViolations = 32;
// Below this per-epoch reference, a labeled source is idle (a demoted
// replica seeing only heartbeats/probes): relative bands over noise that
// small flag nothing but jitter, so the check waits for real traffic.
constexpr uint64_t kMinLabeledReferenceBytes = 4096;
}

TraceShapeWatchdog::TraceShapeWatchdog(WatchdogSpec spec)
    : spec_(std::move(spec)),
      batches_this_epoch_(spec_.num_shards, 0),
      bumps_this_epoch_(spec_.num_shards, 0) {}

void TraceShapeWatchdog::SetWireByteSource(
    std::function<std::pair<uint64_t, uint64_t>()> source) {
  std::lock_guard<std::mutex> lk(mu_);
  byte_source_ = std::move(source);
  have_byte_sample_ = false;
}

void TraceShapeWatchdog::AddWireByteSource(std::string label,
                                           std::function<WireByteSample()> source) {
  std::lock_guard<std::mutex> lk(mu_);
  LabeledByteSource s;
  s.label = std::move(label);
  s.source = std::move(source);
  labeled_sources_.push_back(std::move(s));
}

void TraceShapeWatchdog::SetOnViolation(std::function<void(const std::string&)> cb) {
  std::lock_guard<std::mutex> lk(mu_);
  on_violation_ = std::move(cb);
}

void TraceShapeWatchdog::ObserveShardBatch(uint32_t shard, size_t requests) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shard >= spec_.num_shards) {
    ViolationLocked("read sub-batch for unknown shard " + std::to_string(shard));
    return;
  }
  batches_this_epoch_[shard]++;
  if (spec_.read_quota != 0 && requests != spec_.read_quota) {
    ViolationLocked("shard " + std::to_string(shard) + " read sub-batch carries " +
                    std::to_string(requests) + " requests, padded shape requires exactly " +
                    std::to_string(spec_.read_quota));
  }
}

void TraceShapeWatchdog::ObserveShardAdvance(uint32_t shard, size_t bumps) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shard >= spec_.num_shards) {
    ViolationLocked("write advance for unknown shard " + std::to_string(shard));
    return;
  }
  bumps_this_epoch_[shard] += bumps;
}

void TraceShapeWatchdog::ObserveEpochClose() {
  std::lock_guard<std::mutex> lk(mu_);
  ++epochs_checked_;
  for (uint32_t s = 0; s < spec_.num_shards; ++s) {
    if (spec_.batches_per_epoch != 0 && batches_this_epoch_[s] != spec_.batches_per_epoch) {
      ViolationLocked("shard " + std::to_string(s) + " executed " +
                      std::to_string(batches_this_epoch_[s]) +
                      " read sub-batches this epoch, padded shape requires exactly " +
                      std::to_string(spec_.batches_per_epoch));
    }
    if (spec_.write_quota != 0 && bumps_this_epoch_[s] != spec_.write_quota) {
      ViolationLocked("shard " + std::to_string(s) + " write schedule advanced by " +
                      std::to_string(bumps_this_epoch_[s]) +
                      " this epoch, padded shape requires exactly " +
                      std::to_string(spec_.write_quota));
    }
    batches_this_epoch_[s] = 0;
    bumps_this_epoch_[s] = 0;
  }

  CheckLabeledSourcesLocked();

  if (!byte_source_ || spec_.wire_byte_tolerance <= 0) {
    return;
  }
  std::pair<uint64_t, uint64_t> sample = byte_source_();
  if (!have_byte_sample_) {
    // First observed boundary (or first after a recovery reset): no delta
    // to check yet.
    have_byte_sample_ = true;
    last_byte_sample_ = sample;
    return;
  }
  std::pair<uint64_t, uint64_t> delta{sample.first - last_byte_sample_.first,
                                      sample.second - last_byte_sample_.second};
  last_byte_sample_ = sample;
  ++byte_epochs_seen_;
  if (byte_epochs_seen_ <= spec_.byte_warmup_epochs) {
    return;  // stash/cache warmup epochs have unrepresentative traffic
  }
  if (!have_reference_) {
    have_reference_ = true;
    reference_delta_ = delta;
    return;
  }
  auto check = [&](const char* direction, uint64_t got, uint64_t ref) {
    double lo = static_cast<double>(ref) * (1.0 - spec_.wire_byte_tolerance);
    double hi = static_cast<double>(ref) * (1.0 + spec_.wire_byte_tolerance);
    if (static_cast<double>(got) < lo || static_cast<double>(got) > hi) {
      ViolationLocked("per-epoch wire bytes " + std::string(direction) + " = " +
                      std::to_string(got) + " outside the shaped band [" +
                      std::to_string(static_cast<uint64_t>(lo)) + ", " +
                      std::to_string(static_cast<uint64_t>(hi)) + "] around reference " +
                      std::to_string(ref));
    }
  };
  check("sent", delta.first, reference_delta_.first);
  check("received", delta.second, reference_delta_.second);
}

void TraceShapeWatchdog::CheckLabeledSourcesLocked() {
  if (spec_.wire_byte_tolerance <= 0) {
    return;
  }
  for (LabeledByteSource& src : labeled_sources_) {
    WireByteSample sample = src.source();
    if (!src.have_sample || sample.generation != src.last.generation) {
      // First boundary, a post-recovery reset, or the replica topology
      // changed underneath this source: traffic legitimately moved, so
      // re-warm and re-reference rather than flag the shift.
      src.have_sample = true;
      src.last = sample;
      src.have_reference = false;
      src.epochs_seen = 0;
      continue;
    }
    std::pair<uint64_t, uint64_t> delta{sample.sent - src.last.sent,
                                        sample.received - src.last.received};
    src.last = sample;
    ++src.epochs_seen;
    if (src.epochs_seen <= spec_.byte_warmup_epochs) {
      continue;
    }
    if (!src.have_reference) {
      src.have_reference = true;
      src.reference = delta;
      continue;
    }
    if (src.reference.first < kMinLabeledReferenceBytes &&
        src.reference.second < kMinLabeledReferenceBytes) {
      // Idle source (e.g. a lagging replica receiving only probes). Pick up
      // a fresh reference so the band is meaningful once traffic arrives.
      src.reference = delta;
      continue;
    }
    auto check = [&](const char* direction, uint64_t got, uint64_t ref) {
      double lo = static_cast<double>(ref) * (1.0 - spec_.wire_byte_tolerance);
      double hi = static_cast<double>(ref) * (1.0 + spec_.wire_byte_tolerance);
      if (static_cast<double>(got) < lo || static_cast<double>(got) > hi) {
        ViolationLocked("per-epoch wire bytes " + std::string(direction) + " for " + src.label +
                        " = " + std::to_string(got) + " outside the shaped band [" +
                        std::to_string(static_cast<uint64_t>(lo)) + ", " +
                        std::to_string(static_cast<uint64_t>(hi)) + "] around reference " +
                        std::to_string(ref));
      }
    };
    check("sent", delta.first, src.reference.first);
    check("received", delta.second, src.reference.second);
  }
}

void TraceShapeWatchdog::ResetEpoch() {
  std::lock_guard<std::mutex> lk(mu_);
  for (uint32_t s = 0; s < spec_.num_shards; ++s) {
    batches_this_epoch_[s] = 0;
    bumps_this_epoch_[s] = 0;
  }
  // Recovery traffic (bucket restores, WAL replay) is legitimately
  // unshaped: invalidate the running byte samples so the next boundary only
  // re-seeds them.
  have_byte_sample_ = false;
  for (LabeledByteSource& src : labeled_sources_) {
    src.have_sample = false;
  }
}

uint64_t TraceShapeWatchdog::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return violations_;
}

uint64_t TraceShapeWatchdog::epochs_checked() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epochs_checked_;
}

std::vector<std::string> TraceShapeWatchdog::recent_violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recent_;
}

void TraceShapeWatchdog::ViolationLocked(const std::string& message) {
  ++violations_;
  if (recent_.size() >= kMaxRecentViolations) {
    recent_.erase(recent_.begin());
  }
  recent_.push_back(message);
  std::fprintf(stderr, "[obs watchdog] TRACE SHAPE VIOLATION: %s\n", message.c_str());
  Tracer::Get().RecordInstant("watchdog", "shape_violation");
  if (on_violation_) {
    on_violation_(message);
  }
  if (spec_.abort_on_violation) {
    std::fprintf(stderr, "[obs watchdog] abort_on_violation is set; aborting\n");
    std::abort();
  }
}

}  // namespace obladi
