// Bridges from the system's existing stats structs to a MetricsSink.
// Each Export* call emits one struct's counters under stable metric names;
// callers snapshot the struct first (via its own locked/atomic accessor),
// so every scrape sees one internally consistent cut per struct.
#ifndef OBLADI_SRC_OBS_EXPORTERS_H_
#define OBLADI_SRC_OBS_EXPORTERS_H_

#include "src/obs/metrics.h"
#include "src/oram/ring_oram.h"
#include "src/proxy/obladi_store.h"
#include "src/net/storage_server.h"
#include "src/storage/latency_store.h"

namespace obladi {

void ExportObladiStats(MetricsSink& sink, const ObladiStats& s,
                       const MetricLabels& labels = {});
void ExportRingOramStats(MetricsSink& sink, const RingOramStats& s,
                         const MetricLabels& labels = {});
// NetworkStats is all-atomic and non-copyable; reads each field once.
void ExportNetworkStats(MetricsSink& sink, const NetworkStats& s,
                        const MetricLabels& labels = {});
void ExportStorageServerStats(MetricsSink& sink, const StorageServerStats& s,
                              const MetricLabels& labels = {});
void ExportHistogramAs(MetricsSink& sink, const std::string& name, const Histogram& h,
                       const MetricLabels& labels = {});

}  // namespace obladi

#endif  // OBLADI_SRC_OBS_EXPORTERS_H_
