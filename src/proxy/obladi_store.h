// The Obladi proxy (§5, §6): the trusted component that turns client
// transactions into an oblivious, fixed-shape request stream against
// untrusted storage.
//
// Epoch pipeline (per §6.2):
//   * Client reads that miss the epoch's version cache are assigned to the
//     next unfilled of the epoch's R read batches (deduplicated by key); each
//     batch is padded to b_read with dummy requests and executed by the
//     parallel Ring ORAM.
//   * Writes are buffered in the version cache (the MVTSO version chains) and
//     visible to concurrent transactions immediately.
//   * At epoch end: unfinished transactions abort; finished transactions
//     commit in timestamp order (capped by the write batch size); the last
//     committed version of each written key forms the b_write-padded
//     dummiless write batch; deferred bucket writes flush; the recovery unit
//     logs the epoch's delta checkpoint; only then do clients learn commit
//     decisions (epoch fate sharing).
//
// Sharding (num_shards > 1): the proxy runs over a ShardedOramSet — K
// independent Ring ORAM instances partitioning the dense BlockId space. Each
// of the epoch's R read batches carries a fixed per-shard quota of
// ceil(b_read / K) slots; admission (EnqueueFetch) fills a batch only while
// the target key's shard still has quota, so the sub-batch the storage
// server sees per shard is always exactly the quota, dummy-padded. Write
// batches are capped per shard the same way via the MVTSO epoch-commit
// admission. K = 1 reduces exactly to the single-ORAM pipeline above.
//
// Pacing: in timed mode a background thread dispatches the R read batches at
// fixed intervals and then runs the epoch change, so the request stream's
// timing is workload independent. Tests use manual mode and call
// StepReadBatch / FinishEpochNow directly.
#ifndef OBLADI_SRC_PROXY_OBLADI_STORE_H_
#define OBLADI_SRC_PROXY_OBLADI_STORE_H_

#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/oram/ring_oram.h"
#include "src/proxy/key_directory.h"
#include "src/recovery/recovery_unit.h"
#include "src/shard/sharded_oram_set.h"
#include "src/storage/bucket_store.h"
#include "src/txn/kv_interface.h"
#include "src/txn/mvtso.h"

namespace obladi {

struct ObladiConfig {
  RingOramConfig oram;  // global capacity; per-shard trees derived from it
  RingOramOptions oram_options;
  uint32_t num_shards = 1;            // K parallel Ring ORAM instances
  size_t read_batches_per_epoch = 4;  // R
  size_t read_batch_size = 32;        // b_read (global, across shards)
  size_t write_batch_size = 32;       // b_write (global, across shards)
  uint64_t batch_interval_us = 2000;  // Δ (timed mode)
  bool timed_mode = false;
  RecoveryConfig recovery;
  uint64_t seed = 0x0b1ad1;

  // Convenience constructor with derived ORAM parameters.
  static ObladiConfig ForCapacity(uint64_t capacity, uint32_t z = 8, size_t payload = 256) {
    ObladiConfig cfg;
    cfg.oram = RingOramConfig::ForCapacity(capacity, z, payload);
    return cfg;
  }

  // Fixed per-shard slots in every read batch / write batch.
  size_t read_quota() const { return (read_batch_size + num_shards - 1) / num_shards; }
  size_t write_quota() const { return (write_batch_size + num_shards - 1) / num_shards; }

  ShardLayout MakeLayout() const { return ShardLayout::Make(oram, num_shards); }

  // Buckets the backing store must provide (K shard trees side by side).
  size_t StoreBuckets() const { return MakeLayout().total_buckets(); }
};

struct ObladiStats {
  uint64_t epochs = 0;
  uint64_t read_batches = 0;
  uint64_t cache_hits = 0;      // reads served from the version cache
  uint64_t oram_fetches = 0;    // deduplicated batch slots used
  uint64_t fetch_dedups = 0;    // reads coalesced onto an in-flight fetch
  uint64_t batch_overflow_aborts = 0;
  uint64_t recoveries = 0;
};

class ObladiStore : public TransactionalKv {
 public:
  // `log` may be nullptr when cfg.recovery.enabled is false. The store must
  // have at least cfg.StoreBuckets() buckets.
  ObladiStore(ObladiConfig cfg, std::shared_ptr<BucketStore> store,
              std::shared_ptr<LogStore> log);
  ~ObladiStore() override;

  // Bulk-load the initial database and write the base checkpoint. Must be
  // called once before any transaction.
  Status Load(const std::vector<std::pair<Key, std::string>>& records);

  // --- TransactionalKv ---
  Timestamp Begin() override;
  StatusOr<std::string> Read(Timestamp txn, const Key& key) override;
  Status Write(Timestamp txn, const Key& key, std::string value) override;
  Status Commit(Timestamp txn) override;
  void Abort(Timestamp txn) override;

  // --- pacing ---
  void Start();  // timed mode: launch the epoch pacer thread
  void Stop();
  Status StepReadBatch();   // dispatch + execute the next read batch
  Status FinishEpochNow();  // run the epoch change (dispatches remaining batches)

  // --- crash & recovery (§8) ---
  // Drop all volatile proxy state, as if the proxy process died. In-flight
  // client operations fail with kAborted.
  void SimulateCrash();
  // Rebuild from the write-ahead log: restore the last committed epoch,
  // replay the aborted epoch's logged read batches, complete the
  // crash-recovery epoch, and resume service. Fills `breakdown` if non-null.
  Status RecoverFromCrash(RecoveryBreakdown* breakdown = nullptr);

  ObladiStats stats() const;
  MvtsoStats txn_stats() const { return engine_.stats(); }
  ShardedOramSet* oram() { return oram_.get(); }
  const ObladiConfig& config() const { return cfg_; }

 private:
  struct PendingFetch {
    BlockId id;
    Key key;
    std::shared_ptr<std::promise<Status>> done;
  };
  // One of the epoch's R read batches: the real fetches plus how many of
  // each shard's fixed quota they consume.
  struct EpochBatch {
    std::vector<PendingFetch> fetches;
    std::vector<size_t> shard_counts;
  };

  std::unique_ptr<ShardedOramSet> MakeOramSet(uint64_t seed) const;
  StatusOr<std::shared_future<Status>> EnqueueFetch(const Key& key, BlockId id);
  Status DispatchBatch(EpochBatch batch);
  void PacerLoop();
  Status CompleteCrashEpoch(const std::vector<size_t>& replayed_per_shard);
  void FailAllWaiters();
  void ResetEpochBatchesLocked();

  ObladiConfig cfg_;
  std::shared_ptr<BucketStore> store_;
  std::shared_ptr<LogStore> log_;
  std::shared_ptr<Encryptor> encryptor_;
  std::unique_ptr<ShardedOramSet> oram_;
  std::unique_ptr<RecoveryUnit> recovery_;
  KeyDirectory directory_;
  MvtsoEngine engine_;

  mutable std::mutex mu_;  // guards epoch/batch structures below
  bool loaded_ = false;
  bool crashed_ = false;
  std::vector<EpochBatch> epoch_batches_;
  size_t next_dispatch_ = 0;
  std::unordered_map<Key, std::shared_future<Status>> inflight_fetches_;
  std::unordered_map<Timestamp, std::shared_ptr<std::promise<Status>>> commit_waiters_;
  ObladiStats stats_;

  std::mutex dispatch_mu_;  // serializes batch dispatch / epoch change
  std::thread pacer_;
  std::atomic<bool> pacer_running_{false};
};

}  // namespace obladi

#endif  // OBLADI_SRC_PROXY_OBLADI_STORE_H_
