// The Obladi proxy (§5, §6): the trusted component that turns client
// transactions into an oblivious, fixed-shape request stream against
// untrusted storage.
//
// Epoch pipeline (per §6.2):
//   * Client reads that miss the epoch's version cache are assigned to the
//     next unfilled of the epoch's R read batches (deduplicated by key); each
//     batch is padded to b_read with dummy requests and executed by the
//     parallel Ring ORAM.
//   * Writes are buffered in the version cache (the MVTSO version chains) and
//     visible to concurrent transactions immediately.
//   * At epoch end: unfinished transactions abort; finished transactions
//     commit in timestamp order (capped by the write batch size); the last
//     committed version of each written key forms the b_write-padded
//     dummiless write batch; deferred bucket writes flush; the recovery unit
//     logs the epoch's delta checkpoint; only then do clients learn commit
//     decisions (epoch fate sharing).
//
// Sharding (num_shards > 1): the proxy runs over a ShardedOramSet — K
// independent Ring ORAM instances partitioning the dense BlockId space. Each
// of the epoch's R read batches carries a fixed per-shard quota of
// ceil(b_read / K) slots; admission (EnqueueFetch) fills a batch only while
// the target key's shard still has quota, so the sub-batch the storage
// server sees per shard is always exactly the quota, dummy-padded. Write
// batches are capped per shard the same way via the MVTSO epoch-commit
// admission. K = 1 reduces exactly to the single-ORAM pipeline above.
//
// Pipelined epochs (the depth-D epoch state machine): the epoch change is
// split into a synchronous *close* step and a background *retirement* stage,
// so a closed epoch's network-bound write-back overlaps later epochs'
// execution. Up to `pipeline_depth` closed epochs may be retiring at once:
//
//   close (CloseEpochNow, serialized with batch dispatch):
//     dispatch remaining read batches -> EndEpoch (commit admission; the
//     final writes are re-installed as next-epoch base versions) ->
//     ORAM WriteBatch -> wait for a free retirement slot (fewer than
//     pipeline_depth epochs in flight) -> BeginRetire (submit the write-back
//     without waiting) -> capture the delta checkpoint payload -> open the
//     next epoch.
//
//   retirement (one background worker draining a FIFO of closed epochs):
//     await write-back durability -> append + sync the captured checkpoint,
//     strictly in close order -> release commit decisions (epoch fate
//     sharing: clients learn outcomes only once the epoch is durable —
//     delayed visibility is preserved, decisions just arrive asynchronously)
//     -> collect retired buckets -> truncate stale versions.
//
// Later epochs' reads of blocks whose write-back is still in flight are
// served from the version cache (committed bases) or the shards' retiring
// buffers (any live retiring generation), so execution never waits on
// storage latency it can hide. In-flight state is bounded two ways: the
// depth cap (at most pipeline_depth + 1 epochs' working sets live at once)
// and the explicit `max_stash_blocks` budget — batch dispatch backpressures
// while stash + retiring blocks exceed the budget and a retirement is still
// in flight to shrink it. The recovery unit's ordering gate admits a read
// batch's log record only while fewer than pipeline_depth checkpoints are
// pending, so crash recovery replays at most that many unretired epochs'
// plans, grouped by their logged epoch and completed oldest-first.
//
// Sub-epoch access scheduler: within a batch, the read stage answers each
// real access as soon as its path group decrypts (access_r-style early
// answers via the ORAM's early-result callback — the client unblocks without
// waiting for the batch's slowest path), and the write-schedule advance
// eagerly dispatches the eviction/reshuffle read phases it triggers so they
// overlap the batch's plan logging. Both reorder work only in time: the wire
// request multiset per epoch is unchanged (the trace-shape watchdog checks
// this at every depth).
//
// Pacing: in timed mode a background thread dispatches the R read batches at
// fixed *absolute deadlines* (cadence independent of flush duration) and
// then closes the epoch, so the request stream's timing is workload
// independent. Tests use manual mode and call StepReadBatch /
// CloseEpochNow / FinishEpochNow directly.
#ifndef OBLADI_SRC_PROXY_OBLADI_STORE_H_
#define OBLADI_SRC_PROXY_OBLADI_STORE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/obs/admin_server.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_config.h"
#include "src/obs/watchdog.h"
#include "src/oram/ring_oram.h"
#include "src/proxy/key_directory.h"
#include "src/recovery/recovery_unit.h"
#include "src/shard/sharded_oram_set.h"
#include "src/storage/bucket_store.h"
#include "src/txn/kv_interface.h"
#include "src/txn/mvtso.h"

namespace obladi {

struct ObladiConfig {
  RingOramConfig oram;  // global capacity; per-shard trees derived from it
  RingOramOptions oram_options;
  uint32_t num_shards = 1;            // K parallel Ring ORAM instances
  size_t read_batches_per_epoch = 4;  // R
  size_t read_batch_size = 32;        // b_read (global, across shards)
  size_t write_batch_size = 32;       // b_write (global, across shards)
  uint64_t batch_interval_us = 2000;  // Δ (timed mode)
  bool timed_mode = false;
  // Overlap epoch N's retirement with epoch N+1's execution (see file
  // comment). When false the pacer drains each retirement inline — the
  // serial-epoch baseline bench_epoch_pipeline measures against. Manual-mode
  // FinishEpochNow always drains, so tests see serial semantics either way.
  bool pipeline_epochs = true;
  // Epoch pipeline depth D: how many closed epochs may be retiring
  // concurrently (1 = the original close-waits-for-previous behavior; the
  // compatibility baseline). Depth D bounds live state to D+1 epochs'
  // working sets and lets the close step proceed while up to D write-backs
  // ride the network. Clamped to 1 when pipeline_epochs is false (the serial
  // baseline drains every retirement inline anyway).
  size_t pipeline_depth = 2;
  // Explicit stash budget for the pipeline: while the shards' stash +
  // retiring blocks exceed this, batch dispatch stalls until an in-flight
  // retirement collects (counted in stash_budget_stalls). 0 = unbounded
  // (the depth cap alone bounds memory). Distinct from the per-shard
  // RingOramConfig::max_stash_blocks serialization pad.
  size_t max_stash_blocks = 0;
  // Log one combined plan record per global batch (K shard sub-plans, one
  // append + one sync) instead of K separate records. False reproduces the
  // pre-pipelining log layout, where K serialized log round trips sit on
  // every batch's critical path (the bench's serial baseline).
  bool combine_batch_plan_logs = true;
  RecoveryConfig recovery;
  // Graceful degradation: how long an epoch close may wait on the previous
  // retirement before giving up (0 = wait forever, the historical
  // behavior). When a storage node becomes unreachable mid-retirement the
  // close step fails with DeadlineExceeded after this budget instead of
  // hanging, blocked clients fail retriably, and the proxy can be recovered
  // once the partition heals.
  uint64_t retire_timeout_ms = 0;
  // Observability: span tracing, metrics registry + admin scrape listener,
  // and the oblivious trace-shape watchdog. All off by default (zero-cost).
  ObsConfig obs;
  uint64_t seed = 0x0b1ad1;

  // Convenience constructor with derived ORAM parameters.
  static ObladiConfig ForCapacity(uint64_t capacity, uint32_t z = 8, size_t payload = 256) {
    ObladiConfig cfg;
    cfg.oram = RingOramConfig::ForCapacity(capacity, z, payload);
    return cfg;
  }

  // Fixed per-shard slots in every read batch / write batch.
  size_t read_quota() const { return (read_batch_size + num_shards - 1) / num_shards; }
  size_t write_quota() const { return (write_batch_size + num_shards - 1) / num_shards; }

  ShardLayout MakeLayout() const { return ShardLayout::Make(oram, num_shards); }

  // Buckets the backing store must provide (K shard trees side by side).
  size_t StoreBuckets() const { return MakeLayout().total_buckets(); }
};

struct ObladiStats {
  uint64_t epochs = 0;
  uint64_t read_batches = 0;
  uint64_t cache_hits = 0;      // reads served from the version cache
  uint64_t oram_fetches = 0;    // deduplicated batch slots used
  uint64_t fetch_dedups = 0;    // reads coalesced onto an in-flight fetch
  uint64_t batch_overflow_aborts = 0;
  uint64_t recoveries = 0;
  // Pipeline observability.
  uint64_t epochs_overlapped = 0;         // epochs that ran while their
                                          // predecessor was still retiring
  uint64_t retire_stall_us = 0;           // close-step time spent waiting on
                                          // the previous retirement (depth cap)
  uint64_t max_inflight_stash_blocks = 0; // peak stash + retiring blocks
  // Sub-epoch scheduler observability.
  uint64_t sched_overlapped_accesses = 0; // reads answered by the scheduler's
                                          // read stage before its batch finished
  uint64_t stash_budget_stalls = 0;       // dispatches stalled on max_stash_blocks
  uint64_t stash_budget_stall_us = 0;     // time spent in those stalls
  // Transaction accounting (mirrored from the MVTSO engine so one stats()
  // call gives the whole abort/retry picture).
  uint64_t txn_begun = 0;
  uint64_t txn_committed = 0;
  uint64_t txn_aborted = 0;               // sum over all abort causes
  double aborts_per_committed_txn = 0;
};

class ObladiStore : public TransactionalKv {
 public:
  // `log` may be nullptr when cfg.recovery.enabled is false. The store must
  // have at least cfg.StoreBuckets() buckets.
  ObladiStore(ObladiConfig cfg, std::shared_ptr<BucketStore> store,
              std::shared_ptr<LogStore> log);
  // Per-shard backing stores (cfg.num_shards of them, each with at least
  // MakeLayout().shard_config.num_buckets() buckets) — one storage node per
  // shard, the deployment where a single node can partition away while the
  // rest stay reachable. Crash recovery rebuilds over the same stores.
  ObladiStore(ObladiConfig cfg, std::vector<std::shared_ptr<BucketStore>> shard_stores,
              std::shared_ptr<LogStore> log);
  ~ObladiStore() override;

  // Bulk-load the initial database and write the base checkpoint. Must be
  // called once before any transaction.
  Status Load(const std::vector<std::pair<Key, std::string>>& records);

  // --- TransactionalKv ---
  Timestamp Begin() override;
  StatusOr<std::string> Read(Timestamp txn, const Key& key) override;
  Status Write(Timestamp txn, const Key& key, std::string value) override;
  Status Commit(Timestamp txn) override;
  void Abort(Timestamp txn) override;

  // Asynchronous commit: registers the decision waiter and requests the
  // commit, returning a future that resolves when the transaction's epoch is
  // durable (the retirement stage releases it). With pipelined epochs the
  // decision arrives one retirement later than the request — clients that
  // pipeline their own transactions (delayed visibility's intended client
  // model) use this instead of blocking in Commit.
  StatusOr<std::shared_future<Status>> CommitAsync(Timestamp txn);

  // --- pacing / epoch state machine ---
  void Start();  // timed mode: launch the epoch pacer thread
  void Stop();
  Status StepReadBatch();  // dispatch + execute the next read batch
  // Close the current epoch (dispatches remaining batches, decides commits,
  // submits the write-back) and hand it to the background retirement stage;
  // returns without waiting for durability. Commit decisions release when
  // the retirement completes.
  Status CloseEpochNow();
  // Block until the retirement stage is idle; returns the first retirement
  // failure (sticky until recovery).
  Status DrainRetirement();
  // Serial epoch change: CloseEpochNow + DrainRetirement. Manual-mode tests
  // use this; when it returns, all commit decisions have been released.
  Status FinishEpochNow();
  // Test hook: runs on the retirement worker after the epoch's write-back is
  // durable, before its checkpoint append. Lets tests hold an epoch in the
  // retiring state (and crash the proxy inside the window).
  void SetRetireHookForTest(std::function<void()> hook);

  // Clock-skew fault hook: maps each internal MVTSO timestamp to the
  // *claimed* timestamp handed to clients (and embedded in audit
  // histories). The hook MUST be strictly increasing across calls (see
  // src/fault/skew_clock.h) — Begin() serializes engine Begin + hook under
  // one lock so claimed order matches internal order, and every public
  // entry point translates claimed handles back. nullptr (default)
  // disables translation at zero cost.
  void SetClaimedTimestampHook(std::function<uint64_t(uint64_t)> hook);

  // --- crash & recovery (§8) ---
  // Drop all volatile proxy state, as if the proxy process died. In-flight
  // client operations fail with kAborted.
  void SimulateCrash();
  // Rebuild from the write-ahead log: restore the last committed epoch,
  // replay the aborted epoch's logged read batches, complete the
  // crash-recovery epoch, and resume service. Fills `breakdown` if non-null.
  Status RecoverFromCrash(RecoveryBreakdown* breakdown = nullptr);

  ObladiStats stats() const;
  MvtsoStats txn_stats() const { return engine_.stats(); }
  ShardedOramSet* oram() { return oram_.get(); }
  const ObladiConfig& config() const { return cfg_; }

  // --- observability (null/0 unless the matching ObsConfig flag is set) ---
  MetricsRegistry* metrics() { return metrics_.get(); }
  TraceShapeWatchdog* watchdog() { return watchdog_.get(); }
  // Bound admin port (cfg.obs.admin_port == 0 picks an ephemeral one).
  uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }

 private:
  struct PendingFetch {
    BlockId id;
    Key key;
    std::shared_ptr<std::promise<Status>> done;
  };
  // One of the epoch's R read batches: the real fetches plus how many of
  // each shard's fixed quota they consume.
  struct EpochBatch {
    std::vector<PendingFetch> fetches;
    std::vector<size_t> shard_counts;
  };

  // One closed epoch handed to the retirement worker: the commit decisions
  // to release once durable, plus the captured checkpoint to append.
  struct RetireJob {
    std::unordered_set<Timestamp> committed;
    std::unordered_map<Timestamp, std::shared_ptr<std::promise<Status>>> waiters;
    RecoveryUnit::PendingCheckpoint checkpoint;
    EpochId epoch = 0;  // the closed epoch, for the retirement trace span
    // A failed close (checkpoint capture error) after BeginRetire already
    // submitted the write-back: the worker only reels the generation back in
    // (await durability + collect) to keep the retirement FIFO consistent —
    // no checkpoint to append, no waiters to release.
    bool collect_only = false;
  };

  std::unique_ptr<ShardedOramSet> MakeOramSet(uint64_t seed) const;
  StatusOr<std::shared_future<Status>> EnqueueFetch(const Key& key, BlockId id);
  size_t WriteAdvanceForBatch(size_t index) const;
  Status DispatchBatch(EpochBatch batch, size_t index);
  // Plan rendezvous: the K shard sub-batches of one global batch each call
  // this from the batch-planned hook; the K-th caller appends ALL K plans as
  // one combined log record (one append + one sync per batch instead of K —
  // K serialized log round trips would otherwise sit on every batch's
  // critical path). Batches are serialized by dispatch_mu_, so at most one
  // rendezvous is in flight.
  Status SubmitPlanForLogging(uint32_t shard, const BatchPlan& plan);
  void InstallPlanHook(bool rendezvous);
  void PacerLoop();
  void RetireLoop();
  void StopRetirer();
  // Timed mode: the pacer hit a fatal storage error and is exiting — mark
  // the proxy dead and fail every blocked client (nobody else will ever
  // close an epoch, so blocked waiters would hang forever).
  void FailPacerFatal();
  // Wait until fewer than max_inflight epochs are in the retirement stage
  // (max_inflight = 1 waits for full idleness; = pipeline_depth is the close
  // step's slot wait). Adds any wait to *stall_us and sets *overlapped if an
  // older retirement was still in flight when called, or finished after this
  // epoch dispatched its first batch (first_dispatch_us; 0 = no dispatch
  // yet). Returns the sticky retirement status. timeout_ms bounds the wait
  // (0 = unbounded); on expiry returns DeadlineExceeded without consuming
  // the retirement (SimulateCrash still drains it unbounded).
  Status AwaitRetireSlot(size_t max_inflight, uint64_t first_dispatch_us,
                         uint64_t* stall_us, bool* overlapped, uint64_t timeout_ms);
  // Stash-budget backpressure (cfg_.max_stash_blocks): stall batch dispatch
  // while the shards' in-flight blocks exceed the budget and a retirement is
  // still in flight to shrink it. Bounded by retire_timeout_ms; on expiry it
  // proceeds (degraded) rather than failing the batch — a wedged retirement
  // is the close step's deadline to report.
  void WaitForStashBudget();
  // Translate a client-visible (possibly skewed) timestamp back to the
  // internal one; identity when no claimed-timestamp hook is installed.
  Timestamp ResolveTxn(Timestamp txn) const;
  Status CompleteCrashEpoch(const std::vector<size_t>& replayed_per_shard);
  void FailAllWaiters();
  void ResetEpochBatchesLocked();

  // Observability plumbing shared by the constructor and crash recovery
  // (the rebuilt ORAM set must be re-attached to the watchdog).
  void SetupObservability();
  void AttachWatchdog();
  // Every backing store (shared or per-shard, plus the log) that exposes
  // transport counters, labeled for metric export.
  std::vector<std::pair<MetricLabels, NetworkStats*>> CollectNetworkStats() const;
  // Replica-set health/counters of every replicated backing store, labeled
  // like CollectNetworkStats (empty for unreplicated deployments).
  std::vector<std::pair<MetricLabels, ReplicationStats>> CollectReplicationStats() const;
  // Per-replica wire-byte sources for the trace-shape watchdog. Called at
  // the end of BOTH constructors: the per-shard form installs its stores
  // after the delegated constructor already ran SetupObservability.
  void RegisterReplicaByteSources();
  // Retire-loop hook: report the retired epoch to every replicated store
  // (lag is measured in epochs) and drive one catch-up pass.
  void DriveReplicaHealing(EpochId epoch);
  // Body for the admin server's /healthz: overall status plus one line per
  // replica of every replicated store.
  std::string HealthzText() const;
  // Labels already wired into the watchdog (the delegating constructor runs
  // RegisterReplicaByteSources twice; the log's sources must not double up).
  std::set<std::string> replica_byte_sources_registered_;

  ObladiConfig cfg_;
  std::shared_ptr<BucketStore> store_;  // shared-store form (empty shard_stores_)
  std::vector<std::shared_ptr<BucketStore>> shard_stores_;  // per-shard form
  std::shared_ptr<LogStore> log_;
  std::shared_ptr<Encryptor> encryptor_;
  // Declared before oram_ so they outlive it: the shard plan hooks hold a
  // raw watchdog pointer, and metrics sources capture `this`.
  std::unique_ptr<TraceShapeWatchdog> watchdog_;
  std::unique_ptr<MetricsRegistry> metrics_;
  // This proxy opened the global tracer's stream sink; close it on teardown.
  bool started_trace_stream_ = false;
  std::unique_ptr<ShardedOramSet> oram_;
  std::unique_ptr<RecoveryUnit> recovery_;
  KeyDirectory directory_;
  MvtsoEngine engine_;

  mutable std::mutex mu_;  // guards epoch/batch structures below
  bool loaded_ = false;
  bool crashed_ = false;
  std::vector<EpochBatch> epoch_batches_;
  size_t next_dispatch_ = 0;
  uint64_t epoch_first_dispatch_us_ = 0;  // when this epoch's batch 0 went out
  std::unordered_map<Key, std::shared_future<Status>> inflight_fetches_;
  std::unordered_map<Timestamp, std::shared_ptr<std::promise<Status>>> commit_waiters_;
  ObladiStats stats_;

  std::mutex dispatch_mu_;  // serializes batch dispatch / epoch change
  std::thread pacer_;
  std::atomic<bool> pacer_running_{false};

  // Retirement stage: one worker draining a FIFO of up to pipeline_depth
  // closed epochs (bounds live state to depth+1 epochs' working sets).
  // retire_mu_ is never held while calling into the ORAM or the recovery
  // unit — except the stash-budget wait's InflightBlocks sample, which is
  // safe because no ORAM path ever takes retire_mu_.
  std::mutex retire_mu_;
  std::condition_variable retire_cv_;
  std::thread retirer_;
  bool retirer_started_ = false;
  bool retire_stop_ = false;
  bool retire_abandon_ = false;  // crash simulation: skip checkpoint append
  std::deque<RetireJob> retire_queue_;
  size_t retire_inflight_ = 0;      // queued + executing retire jobs
  Status retire_status_;            // sticky first retirement failure
  uint64_t last_retire_done_us_ = 0;
  std::function<void()> retire_hook_;

  // Clock-skew fault state (see SetClaimedTimestampHook). skew_mu_ covers
  // engine Begin + hook so claimed order equals internal begin order.
  mutable std::mutex skew_mu_;
  std::atomic<bool> skew_enabled_{false};
  std::function<uint64_t(uint64_t)> claimed_ts_hook_;
  std::unordered_map<Timestamp, Timestamp> claimed_to_internal_;

  // Plan rendezvous state (see SubmitPlanForLogging).
  std::mutex plan_mu_;
  std::condition_variable plan_cv_;
  std::vector<std::pair<uint32_t, BatchPlan>> plan_batch_;
  size_t plan_waiting_ = 0;
  bool plan_leader_active_ = false;  // leader is appending (may block in the
                                     // checkpoint gate — peers wait it out)
  bool plan_done_ = false;
  Status plan_result_;

  // Declared last so the scrape listener stops before anything it reads
  // (metrics sources walk oram_ and stats_) is torn down.
  std::unique_ptr<AdminServer> admin_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_PROXY_OBLADI_STORE_H_
