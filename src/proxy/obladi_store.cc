#include "src/proxy/obladi_store.h"

#include <unordered_set>

#include "src/common/clock.h"
#include "src/common/serde.h"

namespace obladi {

namespace {

// Block payloads are fixed size; values are length-prefixed inside them.
Bytes EncodeValue(const std::string& value) {
  BinaryWriter w(value.size() + 4);
  w.PutString(value);
  return w.Take();
}

std::string DecodeValue(const Bytes& payload) {
  if (payload.size() < 4) {
    return "";
  }
  BinaryReader r(payload);
  return r.GetString();
}

}  // namespace

std::unique_ptr<ShardedOramSet> ObladiStore::MakeOramSet(uint64_t seed) const {
  ShardedOramOptions options;
  options.oram = cfg_.oram_options;
  options.read_quota = cfg_.read_quota();
  options.write_quota = cfg_.write_quota();
  return std::make_unique<ShardedOramSet>(cfg_.MakeLayout(), options, store_, encryptor_,
                                          seed);
}

ObladiStore::ObladiStore(ObladiConfig cfg, std::shared_ptr<BucketStore> store,
                         std::shared_ptr<LogStore> log)
    : cfg_(cfg),
      store_(std::move(store)),
      log_(std::move(log)),
      directory_(cfg.oram.capacity) {
  if (cfg_.num_shards == 0) {
    cfg_.num_shards = 1;
  }
  encryptor_ = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(Bytes{'o', 'b', 'l', 'a', 'd', 'i'}, cfg_.oram.authenticated,
                               cfg_.seed ^ 0x9e3779b97f4a7c15ull));
  oram_ = MakeOramSet(cfg_.seed);

  if (cfg_.recovery.enabled) {
    // Worst-case changed position-map entries *per shard* per epoch.
    cfg_.recovery.posmap_delta_pad_entries =
        cfg_.read_batches_per_epoch * cfg_.read_quota() + cfg_.write_quota();
    recovery_ = std::make_unique<RecoveryUnit>(cfg_.recovery, log_, encryptor_);
    recovery_->SetMetadataProviders(
        [this] { return directory_.SerializeFull(); },
        [this] {
          // Pad the directory delta so its size does not reveal how many new
          // keys an epoch created (at most b_write writes can create keys).
          Bytes delta = directory_.SerializeDelta();
          size_t pad = cfg_.write_batch_size * 64 + 16;
          if (delta.size() < pad) {
            delta.resize(pad, 0);
          }
          return delta;
        });
    oram_->SetBatchPlannedHook([this](uint32_t shard, const BatchPlan& plan) {
      return recovery_->LogReadBatchPlan(shard, plan);
    });
  }
  epoch_batches_.resize(cfg_.read_batches_per_epoch);
  ResetEpochBatchesLocked();
}

ObladiStore::~ObladiStore() { Stop(); }

void ObladiStore::ResetEpochBatchesLocked() {
  epoch_batches_.assign(cfg_.read_batches_per_epoch, EpochBatch{});
  for (auto& batch : epoch_batches_) {
    batch.shard_counts.assign(cfg_.num_shards, 0);
  }
  next_dispatch_ = 0;
}

Status ObladiStore::Load(const std::vector<std::pair<Key, std::string>>& records) {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  std::vector<Bytes> values(cfg_.oram.capacity);
  for (const auto& [key, value] : records) {
    auto id = directory_.GetOrCreate(key);
    if (!id.ok()) {
      return id.status();
    }
    values[*id] = EncodeValue(value);
  }
  OBLADI_RETURN_IF_ERROR(oram_->Initialize(values));
  if (recovery_) {
    OBLADI_RETURN_IF_ERROR(recovery_->LogFullCheckpoint(oram_->shard_ptrs()));
  }
  std::lock_guard<std::mutex> lk(mu_);
  loaded_ = true;
  return Status::Ok();
}

Timestamp ObladiStore::Begin() { return engine_.Begin(); }

StatusOr<std::shared_future<Status>> ObladiStore::EnqueueFetch(const Key& key, BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) {
    return Status::Unavailable("proxy crashed");
  }
  auto it = inflight_fetches_.find(key);
  if (it != inflight_fetches_.end()) {
    stats_.fetch_dedups++;
    return it->second;
  }
  // Admission is per shard: a batch can take this fetch only while the
  // target shard's fixed sub-batch quota has room (the padded per-shard
  // sub-batch size never changes, so overflow aborts instead of leaking).
  uint32_t shard = oram_->router().ShardOf(id);
  for (size_t b = next_dispatch_; b < epoch_batches_.size(); ++b) {
    EpochBatch& batch = epoch_batches_[b];
    if (batch.shard_counts[shard] < cfg_.read_quota()) {
      PendingFetch fetch;
      fetch.id = id;
      fetch.key = key;
      fetch.done = std::make_shared<std::promise<Status>>();
      std::shared_future<Status> fut = fetch.done->get_future().share();
      batch.fetches.push_back(std::move(fetch));
      batch.shard_counts[shard]++;
      inflight_fetches_.emplace(key, fut);
      stats_.oram_fetches++;
      return fut;
    }
  }
  return Status::ResourceExhausted("all read batches in this epoch are full");
}

StatusOr<std::string> ObladiStore::Read(Timestamp txn, const Key& key) {
  for (;;) {
    ReadOutcome outcome = engine_.Read(txn, key);
    if (outcome.kind == ReadOutcome::kAborted) {
      return Status::Aborted("transaction aborted");
    }
    if (outcome.kind == ReadOutcome::kValue) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.cache_hits++;
      }
      return outcome.value;
    }
    // kNeedBase: fetch through the ORAM via the epoch's read batches.
    auto id = directory_.Lookup(key);
    if (!id.ok()) {
      return id.status();  // unknown key
    }
    auto fut = EnqueueFetch(key, *id);
    if (!fut.ok()) {
      if (fut.status().code() == StatusCode::kResourceExhausted) {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.batch_overflow_aborts++;
      }
      engine_.Abort(txn);
      return Status::Aborted(fut.status().message());
    }
    Status st = fut->get();
    if (!st.ok()) {
      engine_.Abort(txn);
      return Status::Aborted("base fetch failed: " + st.message());
    }
    // Base installed; retry against the version cache.
  }
}

Status ObladiStore::Write(Timestamp txn, const Key& key, std::string value) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
  }
  if (value.size() + 4 > cfg_.oram.block_payload_size) {
    return Status::InvalidArgument("value exceeds block payload size");
  }
  auto id = directory_.GetOrCreate(key);
  if (!id.ok()) {
    return id.status();
  }
  return engine_.Write(txn, key, std::move(value));
}

Status ObladiStore::Commit(Timestamp txn) {
  std::shared_ptr<std::promise<Status>> waiter;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
    waiter = std::make_shared<std::promise<Status>>();
    commit_waiters_[txn] = waiter;
  }
  std::shared_future<Status> fut = waiter->get_future().share();
  Status st = engine_.Finish(txn);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    commit_waiters_.erase(txn);
    return st;
  }
  return fut.get();
}

void ObladiStore::Abort(Timestamp txn) { engine_.Abort(txn); }

Status ObladiStore::DispatchBatch(EpochBatch batch) {
  std::vector<BlockId> ids;
  ids.reserve(batch.fetches.size());
  for (const PendingFetch& fetch : batch.fetches) {
    ids.push_back(fetch.id);
  }
  // The sharded set routes the ids and pads every shard's sub-batch to the
  // fixed per-shard quota, so the adversary-visible shape is constant.
  auto results = oram_->ReadBatch(ids);
  if (!results.ok()) {
    for (auto& fetch : batch.fetches) {
      fetch.done->set_value(results.status());
    }
    return results.status();
  }
  for (size_t i = 0; i < batch.fetches.size(); ++i) {
    engine_.InstallBase(batch.fetches[i].key, DecodeValue((*results)[i]));
    batch.fetches[i].done->set_value(Status::Ok());
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.read_batches++;
  return Status::Ok();
}

Status ObladiStore::StepReadBatch() {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  EpochBatch batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
    if (next_dispatch_ >= epoch_batches_.size()) {
      return Status::FailedPrecondition("all read batches dispatched; finish the epoch");
    }
    batch = std::move(epoch_batches_[next_dispatch_]);
    ++next_dispatch_;
  }
  return DispatchBatch(std::move(batch));
}

Status ObladiStore::FinishEpochNow() {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  // Dispatch any remaining read batches so every epoch has the same shape.
  for (;;) {
    EpochBatch batch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (crashed_) {
        return Status::Unavailable("proxy crashed");
      }
      if (next_dispatch_ >= epoch_batches_.size()) {
        break;
      }
      batch = std::move(epoch_batches_[next_dispatch_]);
      ++next_dispatch_;
    }
    OBLADI_RETURN_IF_ERROR(DispatchBatch(std::move(batch)));
  }

  // Commit in timestamp order while the write batch fits both the global cap
  // and every shard's fixed quota.
  WriteBatchAdmission admission;
  admission.max_write_keys = cfg_.write_batch_size;
  if (cfg_.num_shards > 1) {
    admission.shard_quotas.assign(cfg_.num_shards, cfg_.write_quota());
    admission.shard_of = [this](const Key& key) -> uint32_t {
      auto id = directory_.Lookup(key);
      return id.ok() ? oram_->router().ShardOf(*id) : 0;
    };
  }
  EpochOutcome outcome = engine_.EndEpoch(admission);

  std::vector<std::pair<BlockId, Bytes>> writes;
  writes.reserve(outcome.final_writes.size());
  for (const auto& [key, value] : outcome.final_writes) {
    auto id = directory_.Lookup(key);
    if (!id.ok()) {
      return Status::Internal("committed write for unknown key");
    }
    writes.emplace_back(*id, EncodeValue(value));
  }
  OBLADI_RETURN_IF_ERROR(oram_->WriteBatch(writes));
  OBLADI_RETURN_IF_ERROR(oram_->FinishEpoch());
  if (recovery_) {
    OBLADI_RETURN_IF_ERROR(recovery_->LogEpochCommit(oram_->shard_ptrs()));
    OBLADI_RETURN_IF_ERROR(oram_->TruncateStaleVersions());
  }

  // Epoch fate sharing: only now do clients learn the decisions.
  std::unordered_set<Timestamp> committed(outcome.committed.begin(), outcome.committed.end());
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [ts, waiter] : commit_waiters_) {
    if (committed.count(ts) != 0) {
      waiter->set_value(Status::Ok());
    } else {
      waiter->set_value(Status::Aborted("epoch decision: aborted"));
    }
  }
  commit_waiters_.clear();
  ResetEpochBatchesLocked();
  inflight_fetches_.clear();
  stats_.epochs++;
  return Status::Ok();
}

void ObladiStore::Start() {
  if (!cfg_.timed_mode || pacer_running_.exchange(true)) {
    return;
  }
  pacer_ = std::thread([this] { PacerLoop(); });
}

void ObladiStore::Stop() {
  if (pacer_running_.exchange(false) && pacer_.joinable()) {
    pacer_.join();
  }
}

void ObladiStore::PacerLoop() {
  while (pacer_running_.load()) {
    for (size_t i = 0; i < cfg_.read_batches_per_epoch && pacer_running_.load(); ++i) {
      PreciseSleepMicros(cfg_.batch_interval_us);
      Status st = StepReadBatch();
      if (!st.ok() && st.code() != StatusCode::kFailedPrecondition) {
        return;  // storage failure: stop pacing (clients observe aborts)
      }
    }
    if (!pacer_running_.load()) {
      return;
    }
    if (!FinishEpochNow().ok()) {
      return;
    }
  }
}

void ObladiStore::FailAllWaiters() {
  for (auto& batch : epoch_batches_) {
    for (auto& fetch : batch.fetches) {
      fetch.done->set_value(Status::Aborted("proxy crashed"));
    }
    batch.fetches.clear();
    batch.shard_counts.assign(cfg_.num_shards, 0);
  }
  for (auto& [ts, waiter] : commit_waiters_) {
    waiter->set_value(Status::Aborted("proxy crashed"));
  }
  commit_waiters_.clear();
  inflight_fetches_.clear();
}

void ObladiStore::SimulateCrash() {
  Stop();
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  std::lock_guard<std::mutex> lk(mu_);
  crashed_ = true;
  FailAllWaiters();
  engine_.Reset();
  // All volatile ORAM metadata is gone with the proxy.
  oram_.reset();
}

Status ObladiStore::CompleteCrashEpoch(const std::vector<size_t>& replayed_per_shard) {
  // Per the security proof (Appendix B, H4): after replaying the aborted
  // epoch's logged sub-batches, complete the epoch's fixed structure — every
  // shard must still observe its full complement of R quota-sized
  // sub-batches — with fresh dummy sub-batches and an empty write batch,
  // then commit it.
  for (uint32_t s = 0; s < cfg_.num_shards; ++s) {
    for (size_t b = replayed_per_shard[s]; b < cfg_.read_batches_per_epoch; ++b) {
      OBLADI_RETURN_IF_ERROR(oram_->ReadShardDummyBatch(s));
    }
  }
  OBLADI_RETURN_IF_ERROR(oram_->WriteBatch({}));
  OBLADI_RETURN_IF_ERROR(oram_->FinishEpoch());
  OBLADI_RETURN_IF_ERROR(recovery_->LogEpochCommit(oram_->shard_ptrs()));
  return oram_->TruncateStaleVersions();
}

Status ObladiStore::RecoverFromCrash(RecoveryBreakdown* breakdown) {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  if (!recovery_) {
    return Status::FailedPrecondition("recovery is not enabled");
  }
  auto recovered = recovery_->Recover();
  if (!recovered.ok()) {
    return recovered.status();
  }
  if (!recovered->has_state) {
    return Status::DataLoss("no durable state to recover");
  }
  if (recovered->shards.size() != cfg_.num_shards) {
    return Status::InvalidArgument("checkpoint shard count does not match configuration");
  }

  uint64_t salt = recovered->epoch * 7919 + 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    salt += stats_.recoveries * 104729;
  }
  oram_ = MakeOramSet(cfg_.seed ^ salt);
  for (uint32_t s = 0; s < cfg_.num_shards; ++s) {
    RecoveryUnit::ShardState& shard = recovered->shards[s];
    OBLADI_RETURN_IF_ERROR(oram_->RestoreShardState(
        s, std::move(shard.position_map), std::move(shard.metas), std::move(shard.stash),
        shard.access_count, shard.evict_count, recovered->epoch));
  }
  oram_->SetBatchPlannedHook([this](uint32_t shard, const BatchPlan& plan) {
    return recovery_->LogReadBatchPlan(shard, plan);
  });

  if (!recovered->metadata_full.empty()) {
    directory_.ApplyFull(recovered->metadata_full);
  }
  for (const Bytes& delta : recovered->metadata_deltas) {
    directory_.ApplyDelta(delta);
  }

  // Replay the aborted epoch's logged sub-batches so the adversary observes
  // the same paths again (§8), then complete the crash-recovery epoch.
  Stopwatch replay;
  std::vector<size_t> replayed_per_shard(cfg_.num_shards, 0);
  for (const RecoveryUnit::PendingPlan& pending : recovered->pending_plans) {
    auto result = oram_->ReplayShardBatch(pending.shard, pending.plan);
    if (!result.ok()) {
      return result.status();
    }
    replayed_per_shard[pending.shard]++;
  }
  OBLADI_RETURN_IF_ERROR(CompleteCrashEpoch(replayed_per_shard));
  recovered->breakdown.path_replay_us = replay.ElapsedMicros();
  recovered->breakdown.total_us += recovered->breakdown.path_replay_us;

  {
    std::lock_guard<std::mutex> lk(mu_);
    crashed_ = false;
    loaded_ = true;
    ResetEpochBatchesLocked();
    inflight_fetches_.clear();
    stats_.recoveries++;
  }
  if (breakdown != nullptr) {
    *breakdown = recovered->breakdown;
  }
  return Status::Ok();
}

ObladiStats ObladiStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace obladi
