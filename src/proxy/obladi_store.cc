#include "src/proxy/obladi_store.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "src/common/clock.h"
#include "src/common/serde.h"
#include "src/obs/exporters.h"
#include "src/obs/trace.h"

namespace obladi {

namespace {

// Block payloads are fixed size; values are length-prefixed inside them.
Bytes EncodeValue(const std::string& value) {
  BinaryWriter w(value.size() + 4);
  w.PutString(value);
  return w.Take();
}

std::string DecodeValue(const Bytes& payload) {
  if (payload.size() < 4) {
    return "";
  }
  BinaryReader r(payload);
  return r.GetString();
}

}  // namespace

std::unique_ptr<ShardedOramSet> ObladiStore::MakeOramSet(uint64_t seed) const {
  ShardedOramOptions options;
  options.oram = cfg_.oram_options;
  options.read_quota = cfg_.read_quota();
  options.write_quota = cfg_.write_quota();
  if (!shard_stores_.empty()) {
    return std::make_unique<ShardedOramSet>(cfg_.MakeLayout(), options, shard_stores_,
                                            encryptor_, seed);
  }
  return std::make_unique<ShardedOramSet>(cfg_.MakeLayout(), options, store_, encryptor_,
                                          seed);
}

ObladiStore::ObladiStore(ObladiConfig cfg,
                         std::vector<std::shared_ptr<BucketStore>> shard_stores,
                         std::shared_ptr<LogStore> log)
    : ObladiStore(std::move(cfg), nullptr, std::move(log)) {
  // Delegation order note: the delegated constructor runs MakeOramSet with
  // shard_stores_ still empty, so rebuild the set over the per-shard stores
  // here, before anything can touch it (no threads observe oram_ yet —
  // the retirement worker only dereferences it once a job is queued).
  shard_stores_ = std::move(shard_stores);
  oram_ = MakeOramSet(cfg_.seed);
  AttachWatchdog();
  RegisterReplicaByteSources();
}

ObladiStore::ObladiStore(ObladiConfig cfg, std::shared_ptr<BucketStore> store,
                         std::shared_ptr<LogStore> log)
    : cfg_(cfg),
      store_(std::move(store)),
      log_(std::move(log)),
      directory_(cfg.oram.capacity) {
  if (cfg_.num_shards == 0) {
    cfg_.num_shards = 1;
  }
  if (cfg_.pipeline_depth == 0 || !cfg_.pipeline_epochs) {
    // The serial baseline drains each retirement inline — depth is
    // meaningless there and must read as 1 everywhere it is exported.
    cfg_.pipeline_depth = 1;
  }
  // The shards' retiring-buffer window moves in lockstep with the proxy's
  // retirement queue: one retiring generation per in-flight epoch.
  cfg_.oram_options.retire_depth = cfg_.pipeline_depth;
  encryptor_ = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(Bytes{'o', 'b', 'l', 'a', 'd', 'i'}, cfg_.oram.authenticated,
                               cfg_.seed ^ 0x9e3779b97f4a7c15ull));
  oram_ = MakeOramSet(cfg_.seed);

  if (cfg_.recovery.enabled) {
    // Worst-case changed position-map entries *per shard* per epoch.
    cfg_.recovery.posmap_delta_pad_entries =
        cfg_.read_batches_per_epoch * cfg_.read_quota() + cfg_.write_quota();
    recovery_ = std::make_unique<RecoveryUnit>(cfg_.recovery, log_, encryptor_);
    recovery_->SetPipelineWindow(cfg_.pipeline_depth);
    recovery_->SetMetadataProviders(
        [this] { return directory_.SerializeFull(); },
        [this] {
          // Pad the directory delta so its size does not reveal how many new
          // keys an epoch created (at most b_write writes can create keys).
          Bytes delta = directory_.SerializeDelta();
          size_t pad = cfg_.write_batch_size * 64 + 16;
          if (delta.size() < pad) {
            delta.resize(pad, 0);
          }
          return delta;
        });
    InstallPlanHook(/*rendezvous=*/true);
  }
  SetupObservability();
  RegisterReplicaByteSources();
  epoch_batches_.resize(cfg_.read_batches_per_epoch);
  ResetEpochBatchesLocked();
  // The retirement worker exists in every mode: manual-mode FinishEpochNow
  // simply drains it synchronously.
  retirer_ = std::thread([this] { RetireLoop(); });
  retirer_started_ = true;
}

ObladiStore::~ObladiStore() {
  Stop();
  StopRetirer();
  if (started_trace_stream_) {
    Tracer::Get().StopStreaming();
  }
}

void ObladiStore::SetupObservability() {
  if (cfg_.obs.trace) {
    Tracer::Get().Enable(cfg_.obs.trace_ring_capacity);
    if (!cfg_.obs.trace_stream_path.empty()) {
      // Best-effort: a failed open (bad path) leaves the flight recorder
      // running; spans still land in the rings.
      Status st = Tracer::Get().StartStreaming(cfg_.obs.trace_stream_path);
      started_trace_stream_ = st.ok();
    }
  }
  if (cfg_.obs.watchdog) {
    WatchdogSpec spec;
    spec.num_shards = cfg_.num_shards;
    spec.read_quota = cfg_.read_quota();
    spec.batches_per_epoch = cfg_.read_batches_per_epoch;
    spec.write_quota = cfg_.write_quota();
    spec.wire_byte_tolerance = cfg_.obs.watchdog_byte_tolerance;
    spec.byte_warmup_epochs = cfg_.obs.watchdog_byte_warmup_epochs;
    spec.abort_on_violation = cfg_.obs.watchdog_abort;
    watchdog_ = std::make_unique<TraceShapeWatchdog>(spec);
    AttachWatchdog();
  }
  if (cfg_.obs.metrics || cfg_.obs.admin_listener) {
    metrics_ = std::make_unique<MetricsRegistry>();
    metrics_->AddSource([this](MetricsSink& sink) {
      ExportObladiStats(sink, stats(), {});
      {
        // mu_ also guards oram_'s lifetime against SimulateCrash.
        std::lock_guard<std::mutex> lk(mu_);
        if (oram_ != nullptr) {
          ExportRingOramStats(sink, oram_->stats(), {});
        }
      }
      {
        // Pipeline occupancy: epochs currently in the retirement stage
        // (0..pipeline_depth) next to the configured ceiling.
        std::lock_guard<std::mutex> rlk(retire_mu_);
        sink.Gauge("pipeline_depth_live", {}, static_cast<double>(retire_inflight_),
                   "epochs currently in the retirement pipeline");
        sink.Gauge("pipeline_depth_configured", {},
                   static_cast<double>(cfg_.pipeline_depth),
                   "configured epoch pipeline depth");
      }
      if (watchdog_) {
        sink.Counter("obs_watchdog_violations_total", {}, watchdog_->violations(),
                     "trace-shape violations detected");
        sink.Counter("obs_watchdog_epochs_checked_total", {},
                     watchdog_->epochs_checked(), "epochs whose trace shape was checked");
      }
      // Transport hardening counters of every remote/decorated store the
      // proxy was built over, labeled by tier (and shard for per-shard
      // stores), plus unlabeled sums of the headline fault metrics so
      // dashboards and the nemesis assertions need no label math.
      uint64_t deadline_sum = 0;
      uint64_t breaker_sum = 0;
      uint64_t retries_sum = 0;
      for (const auto& [labels, ns] : CollectNetworkStats()) {
        ExportNetworkStats(sink, *ns, labels);
        deadline_sum += ns->deadline_exceeded.load(std::memory_order_relaxed);
        breaker_sum += ns->breaker_open.load(std::memory_order_relaxed);
        retries_sum += ns->retries.load(std::memory_order_relaxed);
      }
      sink.Counter("deadline_exceeded_total", {}, deadline_sum,
                   "requests expired before a response landed (all tiers)");
      sink.Counter("breaker_open_total", {}, breaker_sum,
                   "circuit-breaker open transitions (all tiers)");
      sink.Counter("net_retries_total", {}, retries_sum,
                   "retry-policy resubmissions (all tiers)");
      // Replication tier: failover/resync counters per replicated store,
      // per-replica health and lag gauges, and each replica's own transport
      // counters (the replicated wrapper deliberately exposes no aggregate).
      uint64_t failover_sum = 0;
      uint64_t resync_epoch_sum = 0;
      for (const auto& [labels, rs] : CollectReplicationStats()) {
        failover_sum += rs.failovers;
        resync_epoch_sum += rs.resync_epochs;
        sink.Counter("failover_total", labels, rs.failovers,
                     "automatic primary failovers on read-path failures");
        sink.Counter("replica_resyncs_total", labels, rs.resyncs,
                     "completed replica catch-up passes");
        sink.Counter("replica_resync_epochs_total", labels, rs.resync_epochs,
                     "cumulative epochs of lag cleared by replica resyncs");
        for (const ReplicaInfo& rep : rs.replicas) {
          MetricLabels rl = labels;
          rl.emplace_back("replica", std::to_string(rep.index));
          sink.Gauge("replica_lag_epochs", rl, static_cast<double>(rep.lag_epochs),
                     "epochs this replica is behind the acknowledged state");
          sink.Gauge("replica_healthy", rl,
                     rep.health == ReplicaHealth::kCurrent ? 1.0 : 0.0,
                     "1 = replica is current and serving");
          sink.Gauge("replica_primary", rl, rep.primary ? 1.0 : 0.0,
                     "1 = reads currently target this replica");
          if (rep.stats != nullptr) {
            ExportNetworkStats(sink, *rep.stats, rl);
          }
        }
      }
      sink.Counter("failover_all_total", {}, failover_sum,
                   "automatic primary failovers (all replicated stores)");
      sink.Counter("replica_resync_epochs_all_total", {}, resync_epoch_sum,
                   "epochs of replica lag cleared (all replicated stores)");
      {
        // Shard health: which storage node a degradation/abort came from.
        std::lock_guard<std::mutex> lk(mu_);
        if (oram_ != nullptr) {
          auto health = oram_->ShardHealthSnapshot();
          auto failures = oram_->ShardFailuresSnapshot();
          for (size_t sd = 0; sd < health.size(); ++sd) {
            MetricLabels labels{{"shard", std::to_string(sd)}};
            sink.Gauge("obladi_shard_healthy", labels, health[sd],
                       "1 = shard's last storage operation succeeded");
            sink.Counter("obladi_shard_failures_total", labels, failures[sd],
                         "failed shard storage operations");
          }
        }
      }
    });
  }
  if (watchdog_) {
    // Default wire-byte accounting: feed the watchdog the byte counters of
    // whatever remote stores the proxy was constructed over. Collected
    // lazily at sample time so the per-shard constructor's late store
    // installation is picked up.
    watchdog_->SetWireByteSource([this]() -> std::pair<uint64_t, uint64_t> {
      uint64_t sent = 0;
      uint64_t received = 0;
      for (const auto& [labels, ns] : CollectNetworkStats()) {
        sent += ns->bytes_sent.load(std::memory_order_relaxed);
        received += ns->bytes_received.load(std::memory_order_relaxed);
      }
      return {sent, received};
    });
  }
  if (cfg_.obs.admin_listener) {
    AdminServerOptions opts;
    opts.host = cfg_.obs.admin_host;
    opts.port = cfg_.obs.admin_port;
    admin_ = std::make_unique<AdminServer>(opts, metrics_.get());
    admin_->AddHandler("/trace", "application/json",
                       [] { return Tracer::Get().ChromeTraceJson(); });
    admin_->AddHandler("/healthz", "text/plain", [this] { return HealthzText(); });
    Status st = admin_->Start();
    if (!st.ok()) {
      // A busy port should not take the proxy down with it.
      std::fprintf(stderr, "[obs] admin listener failed to start: %s\n",
                   st.message().c_str());
      admin_.reset();
    }
  }
}

void ObladiStore::AttachWatchdog() {
  if (watchdog_ && oram_) {
    oram_->SetWatchdog(watchdog_.get());
  }
}

std::vector<std::pair<MetricLabels, NetworkStats*>> ObladiStore::CollectNetworkStats()
    const {
  std::vector<std::pair<MetricLabels, NetworkStats*>> out;
  if (store_ != nullptr && store_->network_stats() != nullptr) {
    out.emplace_back(MetricLabels{{"tier", "bucket"}}, store_->network_stats());
  }
  for (size_t s = 0; s < shard_stores_.size(); ++s) {
    if (shard_stores_[s] != nullptr && shard_stores_[s]->network_stats() != nullptr) {
      out.emplace_back(MetricLabels{{"tier", "bucket"}, {"shard", std::to_string(s)}},
                       shard_stores_[s]->network_stats());
    }
  }
  if (log_ != nullptr && log_->network_stats() != nullptr) {
    out.emplace_back(MetricLabels{{"tier", "log"}}, log_->network_stats());
  }
  return out;
}

std::vector<std::pair<MetricLabels, ReplicationStats>> ObladiStore::CollectReplicationStats()
    const {
  std::vector<std::pair<MetricLabels, ReplicationStats>> out;
  auto add = [&](MetricLabels labels, ReplicationStats rs) {
    if (!rs.replicas.empty()) {
      out.emplace_back(std::move(labels), std::move(rs));
    }
  };
  if (store_ != nullptr) {
    add(MetricLabels{{"tier", "bucket"}}, store_->replication_stats());
  }
  for (size_t s = 0; s < shard_stores_.size(); ++s) {
    if (shard_stores_[s] != nullptr) {
      add(MetricLabels{{"tier", "bucket"}, {"shard", std::to_string(s)}},
          shard_stores_[s]->replication_stats());
    }
  }
  if (log_ != nullptr) {
    add(MetricLabels{{"tier", "log"}}, log_->replication_stats());
  }
  return out;
}

void ObladiStore::RegisterReplicaByteSources() {
  if (!watchdog_) {
    return;
  }
  auto sample_of = [](const ReplicationStats& rs,
                      size_t index) -> TraceShapeWatchdog::WireByteSample {
    TraceShapeWatchdog::WireByteSample out;
    out.generation = rs.generation;
    if (index < rs.replicas.size() && rs.replicas[index].stats != nullptr) {
      out.sent = rs.replicas[index].stats->bytes_sent.load(std::memory_order_relaxed);
      out.received = rs.replicas[index].stats->bytes_received.load(std::memory_order_relaxed);
    }
    return out;
  };
  auto add_bucket = [&](const std::string& label, const std::shared_ptr<BucketStore>& store) {
    if (store == nullptr) {
      return;
    }
    ReplicationStats rs = store->replication_stats();
    for (size_t r = 0; r < rs.replicas.size(); ++r) {
      if (rs.replicas[r].stats == nullptr) {
        continue;  // replica without transport counters: nothing to band-check
      }
      std::string name = label + "/replica" + std::to_string(r);
      if (!replica_byte_sources_registered_.insert(name).second) {
        continue;
      }
      watchdog_->AddWireByteSource(
          name, [store, r, sample_of] { return sample_of(store->replication_stats(), r); });
    }
  };
  add_bucket("bucket", store_);
  for (size_t s = 0; s < shard_stores_.size(); ++s) {
    add_bucket("bucket/shard" + std::to_string(s), shard_stores_[s]);
  }
  if (log_ != nullptr) {
    ReplicationStats rs = log_->replication_stats();
    for (size_t r = 0; r < rs.replicas.size(); ++r) {
      if (rs.replicas[r].stats == nullptr) {
        continue;
      }
      std::string name = "log/replica" + std::to_string(r);
      if (!replica_byte_sources_registered_.insert(name).second) {
        continue;
      }
      std::shared_ptr<LogStore> log = log_;
      watchdog_->AddWireByteSource(
          name, [log, r, sample_of] { return sample_of(log->replication_stats(), r); });
    }
  }
}

void ObladiStore::DriveReplicaHealing(EpochId epoch) {
  auto drive = [&](BucketStore* store) {
    if (store != nullptr) {
      store->NoteEpochRetired(epoch);
      (void)store->TryHealReplicas();  // failure: replica stays lagging, retried next epoch
    }
  };
  drive(store_.get());
  for (const auto& store : shard_stores_) {
    drive(store.get());
  }
  if (log_ != nullptr) {
    log_->NoteEpochRetired(epoch);
    (void)log_->TryHealReplicas();
  }
}

std::string ObladiStore::HealthzText() const {
  std::string out = "ok\n";
  for (const auto& [labels, rs] : CollectReplicationStats()) {
    std::string where;
    for (const auto& [k, v] : labels) {
      where += (where.empty() ? "" : ",") + k + "=" + v;
    }
    for (const ReplicaInfo& rep : rs.replicas) {
      out += "replica{" + where + ",replica=" + std::to_string(rep.index) +
             "} health=" + ReplicaHealthName(rep.health) +
             (rep.primary ? " primary" : "") +
             " lag_epochs=" + std::to_string(rep.lag_epochs) + "\n";
    }
  }
  return out;
}

void ObladiStore::ResetEpochBatchesLocked() {
  epoch_batches_.assign(cfg_.read_batches_per_epoch, EpochBatch{});
  for (auto& batch : epoch_batches_) {
    batch.shard_counts.assign(cfg_.num_shards, 0);
  }
  next_dispatch_ = 0;
  epoch_first_dispatch_us_ = 0;
}

Status ObladiStore::Load(const std::vector<std::pair<Key, std::string>>& records) {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  std::vector<Bytes> values(cfg_.oram.capacity);
  for (const auto& [key, value] : records) {
    auto id = directory_.GetOrCreate(key);
    if (!id.ok()) {
      return id.status();
    }
    values[*id] = EncodeValue(value);
  }
  OBLADI_RETURN_IF_ERROR(oram_->Initialize(values));
  if (recovery_) {
    OBLADI_RETURN_IF_ERROR(recovery_->LogFullCheckpoint(oram_->shard_ptrs()));
  }
  std::lock_guard<std::mutex> lk(mu_);
  loaded_ = true;
  return Status::Ok();
}

Timestamp ObladiStore::Begin() {
  if (!skew_enabled_.load(std::memory_order_acquire)) {
    return engine_.Begin();
  }
  // One lock over engine Begin + hook: concurrent Begins must map to
  // claimed timestamps in the same order as their internal ones, or the
  // skewed proxy would (wrongly) present a reordered timeline and fail the
  // audit for a reason the scenario didn't inject.
  std::lock_guard<std::mutex> lk(skew_mu_);
  Timestamp internal = engine_.Begin();
  if (!claimed_ts_hook_) {
    return internal;
  }
  Timestamp claimed = claimed_ts_hook_(internal);
  claimed_to_internal_[claimed] = internal;
  return claimed;
}

Timestamp ObladiStore::ResolveTxn(Timestamp txn) const {
  if (!skew_enabled_.load(std::memory_order_acquire)) {
    return txn;
  }
  std::lock_guard<std::mutex> lk(skew_mu_);
  auto it = claimed_to_internal_.find(txn);
  return it == claimed_to_internal_.end() ? txn : it->second;
}

void ObladiStore::SetClaimedTimestampHook(std::function<uint64_t(uint64_t)> hook) {
  std::lock_guard<std::mutex> lk(skew_mu_);
  claimed_ts_hook_ = std::move(hook);
  skew_enabled_.store(claimed_ts_hook_ != nullptr, std::memory_order_release);
}

StatusOr<std::shared_future<Status>> ObladiStore::EnqueueFetch(const Key& key, BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) {
    return Status::Unavailable("proxy crashed");
  }
  auto it = inflight_fetches_.find(key);
  if (it != inflight_fetches_.end()) {
    stats_.fetch_dedups++;
    return it->second;
  }
  // Admission is per shard: a batch can take this fetch only while the
  // target shard's fixed sub-batch quota has room (the padded per-shard
  // sub-batch size never changes, so overflow aborts instead of leaking).
  uint32_t shard = oram_->router().ShardOf(id);
  for (size_t b = next_dispatch_; b < epoch_batches_.size(); ++b) {
    EpochBatch& batch = epoch_batches_[b];
    if (batch.shard_counts[shard] < cfg_.read_quota()) {
      PendingFetch fetch;
      fetch.id = id;
      fetch.key = key;
      fetch.done = std::make_shared<std::promise<Status>>();
      std::shared_future<Status> fut = fetch.done->get_future().share();
      batch.fetches.push_back(std::move(fetch));
      batch.shard_counts[shard]++;
      inflight_fetches_.emplace(key, fut);
      stats_.oram_fetches++;
      return fut;
    }
  }
  return Status::ResourceExhausted("all read batches in this epoch are full");
}

StatusOr<std::string> ObladiStore::Read(Timestamp txn, const Key& key) {
  txn = ResolveTxn(txn);
  for (;;) {
    ReadOutcome outcome = engine_.Read(txn, key);
    if (outcome.kind == ReadOutcome::kAborted) {
      return Status::Aborted("transaction aborted");
    }
    if (outcome.kind == ReadOutcome::kValue) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.cache_hits++;
      }
      return outcome.value;
    }
    // kNeedBase: fetch through the ORAM via the epoch's read batches.
    auto id = directory_.Lookup(key);
    if (!id.ok()) {
      return id.status();  // unknown key
    }
    auto fut = EnqueueFetch(key, *id);
    if (!fut.ok()) {
      if (fut.status().code() == StatusCode::kResourceExhausted) {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.batch_overflow_aborts++;
      }
      engine_.Abort(txn);
      return Status::Aborted(fut.status().message());
    }
    Status st = fut->get();
    if (!st.ok()) {
      engine_.Abort(txn);
      return Status::Aborted("base fetch failed: " + st.message());
    }
    // Base installed; retry against the version cache.
  }
}

Status ObladiStore::Write(Timestamp txn, const Key& key, std::string value) {
  txn = ResolveTxn(txn);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
  }
  if (value.size() + 4 > cfg_.oram.block_payload_size) {
    return Status::InvalidArgument("value exceeds block payload size");
  }
  auto id = directory_.GetOrCreate(key);
  if (!id.ok()) {
    return id.status();
  }
  return engine_.Write(txn, key, std::move(value));
}

StatusOr<std::shared_future<Status>> ObladiStore::CommitAsync(Timestamp txn) {
  if (skew_enabled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(skew_mu_);
    auto it = claimed_to_internal_.find(txn);
    if (it != claimed_to_internal_.end()) {
      // The claimed handle's last use: translate and drop the mapping.
      txn = it->second;
      claimed_to_internal_.erase(it);
    }
  }
  std::shared_ptr<std::promise<Status>> waiter;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
    waiter = std::make_shared<std::promise<Status>>();
    commit_waiters_[txn] = waiter;
  }
  std::shared_future<Status> fut = waiter->get_future().share();
  Status st = engine_.Finish(txn);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    commit_waiters_.erase(txn);
    return st;
  }
  return fut;
}

Status ObladiStore::Commit(Timestamp txn) {
  auto fut = CommitAsync(txn);
  if (!fut.ok()) {
    return fut.status();
  }
  return fut->get();
}

void ObladiStore::Abort(Timestamp txn) {
  if (skew_enabled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(skew_mu_);
    auto it = claimed_to_internal_.find(txn);
    if (it != claimed_to_internal_.end()) {
      txn = it->second;
      claimed_to_internal_.erase(it);
    }
  }
  engine_.Abort(txn);
}

void ObladiStore::InstallPlanHook(bool rendezvous) {
  if (!recovery_) {
    return;
  }
  if (rendezvous && cfg_.combine_batch_plan_logs) {
    oram_->SetBatchPlannedHook([this](uint32_t shard, const BatchPlan& plan) {
      return SubmitPlanForLogging(shard, plan);
    });
  } else {
    // Direct per-shard logging: used while completing the crash-recovery
    // epoch, whose dummy sub-batches run one shard at a time (a K-wide
    // rendezvous would never fill).
    oram_->SetBatchPlannedHook([this](uint32_t shard, const BatchPlan& plan) {
      return recovery_->LogReadBatchPlan(shard, plan);
    });
  }
}

Status ObladiStore::SubmitPlanForLogging(uint32_t shard, const BatchPlan& plan) {
  std::unique_lock<std::mutex> lk(plan_mu_);
  plan_batch_.emplace_back(shard, plan);
  if (plan_batch_.size() < cfg_.num_shards) {
    ++plan_waiting_;
    Status st;
    for (;;) {
      if (plan_cv_.wait_for(lk, std::chrono::seconds(5), [&] { return plan_done_; })) {
        st = plan_result_;
        break;
      }
      if (plan_leader_active_) {
        // The leader is appending — legitimately unbounded (it may sit in
        // the recovery unit's checkpoint-ordering gate until the previous
        // epoch retires). Keep waiting.
        continue;
      }
      // No leader ever formed: a peer sub-batch failed before planning.
      // Abandon the round so its stale plans cannot leak into the next
      // batch's record.
      plan_batch_.clear();
      st = Status::Internal("plan rendezvous timed out (a shard sub-batch "
                            "failed before planning)");
      break;
    }
    --plan_waiting_;
    if (plan_done_ && plan_waiting_ == 0) {
      plan_done_ = false;
      plan_result_ = Status::Ok();
    }
    return st;
  }
  // Leader (the K-th sub-batch): append the whole batch's plans as one
  // record while the peers wait.
  std::vector<std::pair<uint32_t, BatchPlan>> batch;
  batch.swap(plan_batch_);
  plan_leader_active_ = true;
  lk.unlock();
  Status st = recovery_->LogReadBatchPlans(batch);
  lk.lock();
  plan_leader_active_ = false;
  plan_result_ = st;
  plan_done_ = true;
  plan_cv_.notify_all();
  if (plan_waiting_ == 0) {
    plan_done_ = false;
    plan_result_ = Status::Ok();
  }
  return st;
}

// The write batch's schedule movement for read batch `index` of the epoch:
// spread write_quota bumps per shard evenly across the R batches so the
// per-epoch total is exact and the close applies values with no movement.
size_t ObladiStore::WriteAdvanceForBatch(size_t index) const {
  size_t quota = cfg_.write_quota();
  size_t r = cfg_.read_batches_per_epoch;
  return quota * (index + 1) / r - quota * index / r;
}

Status ObladiStore::DispatchBatch(EpochBatch batch, size_t index) {
  OBS_SPAN_ARG("epoch", "epoch.read_batch", index);
  // Admission backpressure: the stash budget caps in-flight blocks across
  // the retirement pipeline; dispatching more reads would grow it further.
  WaitForStashBudget();
  // Pipelined epochs: advance the (workload-independent) write schedule
  // before planning, so the triggered eviction read phases join this
  // batch's dispatch wave instead of bunching into a storage wave at the
  // epoch close. The serial baseline keeps the pre-pipelining behavior
  // (schedule moves with the write batch at the close).
  if (cfg_.pipeline_epochs) {
    oram_->AdvanceWriteSchedule(WriteAdvanceForBatch(index));
  }
  std::vector<BlockId> ids;
  ids.reserve(batch.fetches.size());
  for (const PendingFetch& fetch : batch.fetches) {
    ids.push_back(fetch.id);
  }
  // Sub-epoch read stage: answer each fetch as soon as its path group
  // decrypts, from the shards' I/O threads. Distinct slots fire at most
  // once and every fire happens-before ReadBatch returns, so the plain
  // delivered[] handoff is race-free. InstallBase is engine-lock safe.
  std::vector<char> delivered(batch.fetches.size(), 0);
  std::atomic<uint64_t> early_count{0};
  ShardedOramSet::EarlyResultFn early = [&](size_t i, const Bytes& payload) {
    if (i >= batch.fetches.size()) {
      return;  // padding slot
    }
    engine_.InstallBase(batch.fetches[i].key, DecodeValue(payload));
    batch.fetches[i].done->set_value(Status::Ok());
    delivered[i] = 1;
    early_count.fetch_add(1, std::memory_order_relaxed);
  };
  // The sharded set routes the ids and pads every shard's sub-batch to the
  // fixed per-shard quota, so the adversary-visible shape is constant.
  // Early answers only reorder completion in time — the serial baseline
  // keeps strict batch-granularity completion.
  auto results =
      cfg_.pipeline_epochs ? oram_->ReadBatch(ids, early) : oram_->ReadBatch(ids);
  if (!results.ok()) {
    // Slots already answered early genuinely succeeded; only the rest see
    // the batch failure.
    for (size_t i = 0; i < batch.fetches.size(); ++i) {
      if (!delivered[i]) {
        batch.fetches[i].done->set_value(results.status());
      }
    }
    return results.status();
  }
  for (size_t i = 0; i < batch.fetches.size(); ++i) {
    if (delivered[i]) {
      continue;
    }
    engine_.InstallBase(batch.fetches[i].key, DecodeValue((*results)[i]));
    batch.fetches[i].done->set_value(Status::Ok());
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.read_batches++;
  stats_.sched_overlapped_accesses += early_count.load(std::memory_order_relaxed);
  return Status::Ok();
}

void ObladiStore::WaitForStashBudget() {
  if (cfg_.max_stash_blocks == 0) {
    return;
  }
  std::unique_lock<std::mutex> rlk(retire_mu_);
  auto under_budget = [&] {
    // With no retirement in flight nothing will shrink the stash — stalling
    // would deadlock, so a budget smaller than one epoch's working set
    // degrades to no backpressure rather than a hang.
    return retire_inflight_ == 0 ||
           oram_->InflightBlocks() <= cfg_.max_stash_blocks;
  };
  if (under_budget()) {
    return;
  }
  OBS_SPAN("sched", "sched.stash_stall");
  uint64_t start = NowMicros();
  if (cfg_.retire_timeout_ms == 0) {
    retire_cv_.wait(rlk, under_budget);
  } else {
    retire_cv_.wait_for(rlk, std::chrono::milliseconds(cfg_.retire_timeout_ms),
                        under_budget);
  }
  uint64_t waited = NowMicros() - start;
  rlk.unlock();
  std::lock_guard<std::mutex> lk(mu_);
  stats_.stash_budget_stalls++;
  stats_.stash_budget_stall_us += waited;
}

Status ObladiStore::StepReadBatch() {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  EpochBatch batch;
  size_t index = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
    if (next_dispatch_ >= epoch_batches_.size()) {
      return Status::FailedPrecondition("all read batches dispatched; finish the epoch");
    }
    batch = std::move(epoch_batches_[next_dispatch_]);
    index = next_dispatch_;
    ++next_dispatch_;
    if (next_dispatch_ == 1) {
      epoch_first_dispatch_us_ = NowMicros();
    }
  }
  return DispatchBatch(std::move(batch), index);
}

Status ObladiStore::CloseEpochNow() {
  SpanGuard obs_span("epoch", "epoch.close");
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  // Dispatch any remaining read batches so every epoch has the same shape.
  for (;;) {
    EpochBatch batch;
    size_t index = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (crashed_) {
        return Status::Unavailable("proxy crashed");
      }
      if (next_dispatch_ >= epoch_batches_.size()) {
        break;
      }
      batch = std::move(epoch_batches_[next_dispatch_]);
      index = next_dispatch_;
      ++next_dispatch_;
      if (next_dispatch_ == 1) {
        epoch_first_dispatch_us_ = NowMicros();
      }
    }
    OBLADI_RETURN_IF_ERROR(DispatchBatch(std::move(batch), index));
  }

  // Commit in timestamp order while the write batch fits both the global cap
  // and every shard's fixed quota. The final writes also seed the next
  // epoch's version cache, so reads of this epoch's writes never wait on the
  // in-flight write-back.
  WriteBatchAdmission admission;
  admission.max_write_keys = cfg_.write_batch_size;
  admission.install_committed_as_base = true;
  if (cfg_.num_shards > 1) {
    admission.shard_quotas.assign(cfg_.num_shards, cfg_.write_quota());
    admission.shard_of = [this](const Key& key) -> uint32_t {
      auto id = directory_.Lookup(key);
      return id.ok() ? oram_->router().ShardOf(*id) : 0;
    };
  }
  EpochOutcome outcome = engine_.EndEpoch(admission);

  std::vector<std::pair<BlockId, Bytes>> writes;
  writes.reserve(outcome.final_writes.size());
  for (const auto& [key, value] : outcome.final_writes) {
    auto id = directory_.Lookup(key);
    if (!id.ok()) {
      return Status::Internal("committed write for unknown key");
    }
    writes.emplace_back(*id, EncodeValue(value));
  }
  if (cfg_.pipeline_epochs) {
    // The schedule already advanced with the batches; the close only
    // deposits the decided values — no storage wave.
    OBLADI_RETURN_IF_ERROR(oram_->ApplyWriteValues(writes));
  } else {
    OBLADI_RETURN_IF_ERROR(oram_->WriteBatch(writes));
  }

  // Depth-D pipeline: wait for a free retirement slot — at most
  // pipeline_depth closed epochs may be in flight, capping live state at
  // depth + 1 epochs' worth.
  uint64_t first_dispatch_us;
  {
    std::lock_guard<std::mutex> lk(mu_);
    first_dispatch_us = epoch_first_dispatch_us_;
  }
  // From here on the epoch's transactions are already decided (EndEpoch
  // cleared them), so any failure must resolve the blocked commit waiters —
  // in manual mode nobody else ever will.
  auto fail_epoch = [this](Status st) -> Status {
    std::lock_guard<std::mutex> lk(mu_);
    FailAllWaiters();
    return st;
  };
  uint64_t stall_us = 0;
  bool overlapped = false;
  Status idle_st = AwaitRetireSlot(cfg_.pipeline_depth, first_dispatch_us, &stall_us,
                                   &overlapped, cfg_.retire_timeout_ms);
  if (!idle_st.ok()) {
    return fail_epoch(idle_st);
  }

  // Submit the write-back without waiting and capture the checkpoint payload
  // before the next epoch can mutate any shard state.
  EpochId closing_epoch = oram_->epoch();
  obs_span.set_arg(closing_epoch);
  Status retire_st = oram_->BeginRetire();
  if (!retire_st.ok()) {
    return fail_epoch(retire_st);
  }
  RetireJob job;
  if (recovery_) {
    auto cp = recovery_->CaptureEpochCommit(oram_->shard_ptrs());
    if (!cp.ok()) {
      // BeginRetire already submitted the flush: hand the worker a
      // collect-only job to reel it back in FIFO with any older in-flight
      // retirements, so the pipeline is not left wedged on an uncollected
      // generation.
      RetireJob reel;
      reel.collect_only = true;
      reel.epoch = closing_epoch;
      {
        std::lock_guard<std::mutex> rlk(retire_mu_);
        retire_queue_.push_back(std::move(reel));
        ++retire_inflight_;
        retire_cv_.notify_all();
      }
      return fail_epoch(cp.status());
    }
    job.checkpoint = std::move(*cp);
  }
  job.committed.insert(outcome.committed.begin(), outcome.committed.end());
  job.epoch = closing_epoch;

  size_t inflight = oram_->InflightBlocks();
  {
    std::lock_guard<std::mutex> lk(mu_);
    // The waiters travel with the retirement: clients learn the decisions
    // only once the epoch is durable (fate sharing, released asynchronously).
    job.waiters.swap(commit_waiters_);
    ResetEpochBatchesLocked();
    inflight_fetches_.clear();
    stats_.epochs++;
    if (overlapped) {
      stats_.epochs_overlapped++;
    }
    stats_.retire_stall_us += stall_us;
    stats_.max_inflight_stash_blocks =
        std::max<uint64_t>(stats_.max_inflight_stash_blocks, inflight);
  }
  {
    std::lock_guard<std::mutex> rlk(retire_mu_);
    retire_queue_.push_back(std::move(job));
    ++retire_inflight_;
    retire_cv_.notify_all();
  }
  return Status::Ok();
}

Status ObladiStore::AwaitRetireSlot(size_t max_inflight, uint64_t first_dispatch_us,
                                    uint64_t* stall_us, bool* overlapped,
                                    uint64_t timeout_ms) {
  std::unique_lock<std::mutex> rlk(retire_mu_);
  if (retire_inflight_ > 0 && overlapped != nullptr) {
    // An older epoch is still retiring while this one closes: real overlap
    // whether or not the window is full enough to stall.
    *overlapped = true;
  }
  if (retire_inflight_ >= max_inflight) {
    OBS_SPAN("epoch", "epoch.retire_stall");
    uint64_t start = NowMicros();
    if (timeout_ms == 0) {
      retire_cv_.wait(rlk, [&] { return retire_inflight_ < max_inflight; });
    } else if (!retire_cv_.wait_for(rlk, std::chrono::milliseconds(timeout_ms),
                                    [&] { return retire_inflight_ < max_inflight; })) {
      // Retirement stall watchdog: the oldest epoch's write-back or
      // checkpoint is stuck (unreachable storage node, hung WAL fsync).
      // Give up on this close instead of hanging the epoch driver — the
      // caller fails blocked clients retriably, and the wedged retirement
      // is drained (unbounded) by SimulateCrash once the fault heals.
      if (stall_us != nullptr) {
        *stall_us += NowMicros() - start;
      }
      return Status::DeadlineExceeded("epoch retirement window still full after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    if (stall_us != nullptr) {
      *stall_us += NowMicros() - start;
    }
  } else if (overlapped != nullptr && first_dispatch_us != 0 &&
             last_retire_done_us_ > first_dispatch_us) {
    // A previous retirement was still running when this epoch's first
    // batch went out: real overlap, even though no close-time stall.
    *overlapped = true;
  }
  return retire_status_;
}

Status ObladiStore::DrainRetirement() {
  return AwaitRetireSlot(1, 0, nullptr, nullptr, /*timeout_ms=*/0);
}

Status ObladiStore::FinishEpochNow() {
  OBLADI_RETURN_IF_ERROR(CloseEpochNow());
  return DrainRetirement();
}

void ObladiStore::SetRetireHookForTest(std::function<void()> hook) {
  std::lock_guard<std::mutex> rlk(retire_mu_);
  retire_hook_ = std::move(hook);
}

void ObladiStore::RetireLoop() {
  Tracer::Get().SetThreadName("epoch-retirer");
  // One job finishes (and frees its retirement slot) with this epilogue:
  // decrement in-flight and wake slot/budget/drain waiters.
  auto finish_job = [this] {
    std::lock_guard<std::mutex> rlk(retire_mu_);
    if (retire_inflight_ > 0) {
      --retire_inflight_;
    }
    last_retire_done_us_ = NowMicros();
    retire_cv_.notify_all();
  };
  for (;;) {
    RetireJob job;
    bool abandon;
    {
      std::unique_lock<std::mutex> rlk(retire_mu_);
      retire_cv_.wait(rlk, [&] { return !retire_queue_.empty() || retire_stop_; });
      if (retire_queue_.empty()) {
        return;  // stopping with nothing queued
      }
      job = std::move(retire_queue_.front());
      retire_queue_.pop_front();
      abandon = retire_abandon_;
    }
    SpanGuard retire_span("epoch", "epoch.retire", job.epoch);
    // 1. Wait for the oldest epoch's write-back to be durable on the server
    //    (the ORAM's retirement tickets are FIFO, aligned with this queue).
    //    Takes no ORAM metadata lock, so in-flight batches run undisturbed.
    Status st = oram_->AwaitRetireDurable();
    if (job.collect_only) {
      // Failed close: nothing was captured and the close already failed the
      // waiters — just reclaim the generation so the pipeline stays usable.
      oram_->CollectRetired();
      finish_job();
      continue;
    }
    {
      std::function<void()> hook;
      {
        std::lock_guard<std::mutex> rlk(retire_mu_);
        hook = retire_hook_;
      }
      if (hook) {
        hook();  // test window: the epoch is retiring but not yet durable
      }
      std::lock_guard<std::mutex> rlk(retire_mu_);
      abandon = abandon || retire_abandon_;
    }
    if (abandon) {
      // Simulated crash inside the retirement window: the checkpoint never
      // reaches the log (recovery sees this epoch as in flight) and every
      // waiter observes the crash instead of a decision. With depth > 1 every
      // queued epoch drains through here, each abandoning its own pending
      // checkpoint capture.
      if (recovery_) {
        recovery_->AbandonPendingCheckpoint(Status::Unavailable("proxy crashed"));
      }
      for (auto& [ts, waiter] : job.waiters) {
        waiter->set_value(Status::Aborted("proxy crashed"));
      }
      finish_job();
      continue;
    }
    // 2. Only now may the checkpoint become durable — it references the new
    //    bucket versions (shadow paging), and appending it opens the
    //    recovery unit's gate for the next epoch's plan records.
    if (recovery_) {
      if (st.ok()) {
        st = recovery_->AppendCaptured(std::move(job.checkpoint));
      } else {
        recovery_->AbandonPendingCheckpoint(st);
      }
    }
    // 3. Epoch fate sharing: the epoch is durable, release the commit
    //    decisions now — clients re-enter while the housekeeping below
    //    (which contends with the next epoch's batches for ORAM locks)
    //    still runs.
    for (auto& [ts, waiter] : job.waiters) {
      if (!st.ok()) {
        waiter->set_value(st);
      } else if (job.committed.count(ts) != 0) {
        waiter->set_value(Status::Ok());
      } else {
        waiter->set_value(Status::Aborted("epoch decision: aborted"));
      }
    }
    // 4. Retired buckets become physically readable again.
    oram_->CollectRetired();
    // 5. Superseded bucket versions are no longer needed by recovery.
    if (st.ok() && recovery_) {
      st = oram_->TruncateStaleVersions();
    }
    // 6. Replica upkeep: report the retired epoch (lag is counted in
    //    epochs) and drive one catch-up pass over any lagging replicas —
    //    off the commit critical path, so clients keep committing while a
    //    healed node resyncs. No-ops on unreplicated deployments.
    DriveReplicaHealing(job.epoch);
    {
      std::lock_guard<std::mutex> rlk(retire_mu_);
      if (!st.ok() && retire_status_.ok()) {
        retire_status_ = st;
      }
    }
    finish_job();
  }
}

void ObladiStore::StopRetirer() {
  {
    std::lock_guard<std::mutex> rlk(retire_mu_);
    if (!retirer_started_) {
      return;
    }
    retire_stop_ = true;
    retire_cv_.notify_all();
  }
  retirer_.join();
  retirer_started_ = false;
}

void ObladiStore::Start() {
  if (!cfg_.timed_mode || pacer_running_.exchange(true)) {
    return;
  }
  pacer_ = std::thread([this] { PacerLoop(); });
}

void ObladiStore::Stop() {
  if (pacer_running_.exchange(false) && pacer_.joinable()) {
    pacer_.join();
  }
}

void ObladiStore::PacerLoop() {
  Tracer::Get().SetThreadName("epoch-pacer");
  // Absolute deadlines, not relative sleeps: a relative Δ per batch adds the
  // (network-bound) epoch change into the cadence — effective epoch length
  // becomes R*Δ + flush time, leaking flush duration into the dispatch
  // schedule. The deadline only re-anchors when the loop has fallen behind
  // (a serial epoch change longer than Δ), so a keeping-up pacer is
  // drift-free and its timing is workload- and latency-independent.
  uint64_t deadline = NowMicros() + cfg_.batch_interval_us;
  while (pacer_running_.load()) {
    for (size_t i = 0; i < cfg_.read_batches_per_epoch && pacer_running_.load(); ++i) {
      PreciseSleepUntilMicros(deadline);
      deadline = std::max(deadline + cfg_.batch_interval_us, NowMicros());
      Status st = StepReadBatch();
      if (!st.ok() && st.code() != StatusCode::kFailedPrecondition) {
        FailPacerFatal();  // storage failure: stop pacing, fail blocked clients
        return;
      }
    }
    if (!pacer_running_.load()) {
      return;
    }
    // Pipelined: close only — retirement rides the background stage while
    // the next epoch's batches dispatch on schedule. Serial baseline: drain.
    Status st = cfg_.pipeline_epochs ? CloseEpochNow() : FinishEpochNow();
    if (!st.ok()) {
      FailPacerFatal();
      return;
    }
  }
}

void ObladiStore::FailPacerFatal() {
  // The pacer is the only epoch driver in timed mode; if it stops on a
  // storage failure, nobody will ever close an epoch again, so clients
  // blocked on commit decisions or fetches must fail now rather than hang.
  std::lock_guard<std::mutex> lk(mu_);
  crashed_ = true;
  FailAllWaiters();
}

void ObladiStore::FailAllWaiters() {
  for (auto& batch : epoch_batches_) {
    for (auto& fetch : batch.fetches) {
      fetch.done->set_value(Status::Aborted("proxy crashed"));
    }
    batch.fetches.clear();
    batch.shard_counts.assign(cfg_.num_shards, 0);
  }
  for (auto& [ts, waiter] : commit_waiters_) {
    waiter->set_value(Status::Aborted("proxy crashed"));
  }
  commit_waiters_.clear();
  inflight_fetches_.clear();
}

void ObladiStore::SimulateCrash() {
  Stop();
  // Abandon any in-flight retirement: the dying proxy never appends its
  // pending checkpoint, and dispatchers blocked in the recovery unit's
  // ordering gate must fail (releasing dispatch_mu_) rather than wait for a
  // checkpoint that will never land.
  {
    std::lock_guard<std::mutex> rlk(retire_mu_);
    retire_abandon_ = true;
    retire_cv_.notify_all();
  }
  if (recovery_) {
    recovery_->AbandonPendingCheckpoint(Status::Unavailable("proxy crashed"));
  }
  // The worker must be quiescent before the ORAM object dies below.
  (void)DrainRetirement();
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  std::lock_guard<std::mutex> lk(mu_);
  crashed_ = true;
  FailAllWaiters();
  engine_.Reset();
  {
    // Claimed-timestamp translations are volatile proxy state too.
    std::lock_guard<std::mutex> slk(skew_mu_);
    claimed_to_internal_.clear();
  }
  // All volatile ORAM metadata is gone with the proxy.
  oram_.reset();
  {
    std::lock_guard<std::mutex> plk(plan_mu_);
    plan_batch_.clear();
    plan_done_ = false;
    plan_result_ = Status::Ok();
  }
  std::lock_guard<std::mutex> rlk(retire_mu_);
  retire_abandon_ = false;
  retire_status_ = Status::Ok();
}

Status ObladiStore::CompleteCrashEpoch(const std::vector<size_t>& replayed_per_shard) {
  // Per the security proof (Appendix B, H4): after replaying the aborted
  // epoch's logged sub-batches, complete the epoch's fixed structure — every
  // shard must still observe its full complement of R quota-sized
  // sub-batches — with fresh dummy sub-batches and an empty write batch,
  // then commit it.
  for (uint32_t s = 0; s < cfg_.num_shards; ++s) {
    for (size_t b = replayed_per_shard[s]; b < cfg_.read_batches_per_epoch; ++b) {
      if (cfg_.pipeline_epochs) {
        oram_->AdvanceShardWriteSchedule(s, WriteAdvanceForBatch(b));
      }
      OBLADI_RETURN_IF_ERROR(oram_->ReadShardDummyBatch(s));
    }
  }
  if (!cfg_.pipeline_epochs) {
    OBLADI_RETURN_IF_ERROR(oram_->WriteBatch({}));
  }
  // Pipelined: the (empty) write batch's schedule movement rode the batches
  // above (and the replayed ones), so there is nothing left to apply.
  OBLADI_RETURN_IF_ERROR(oram_->FinishEpoch());
  OBLADI_RETURN_IF_ERROR(recovery_->LogEpochCommit(oram_->shard_ptrs()));
  return oram_->TruncateStaleVersions();
}

Status ObladiStore::RecoverFromCrash(RecoveryBreakdown* breakdown) {
  OBS_SPAN("epoch", "recovery");
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  if (!recovery_) {
    return Status::FailedPrecondition("recovery is not enabled");
  }
  auto recovered = recovery_->Recover();
  if (!recovered.ok()) {
    return recovered.status();
  }
  if (!recovered->has_state) {
    return Status::DataLoss("no durable state to recover");
  }
  if (recovered->shards.size() != cfg_.num_shards) {
    return Status::InvalidArgument("checkpoint shard count does not match configuration");
  }

  uint64_t salt = recovered->epoch * 7919 + 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    salt += stats_.recoveries * 104729;
  }
  auto rebuilt = MakeOramSet(cfg_.seed ^ salt);
  {
    // mu_ guards oram_'s lifetime against concurrent metrics scrapes.
    std::lock_guard<std::mutex> lk(mu_);
    oram_ = std::move(rebuilt);
  }
  for (uint32_t s = 0; s < cfg_.num_shards; ++s) {
    RecoveryUnit::ShardState& shard = recovered->shards[s];
    OBLADI_RETURN_IF_ERROR(oram_->RestoreShardState(
        s, std::move(shard.position_map), std::move(shard.metas), std::move(shard.stash),
        shard.access_count, shard.evict_count, recovered->epoch));
  }
  InstallPlanHook(/*rendezvous=*/false);  // crash-epoch batches are single shard
  // Re-attach the watchdog to the rebuilt ORAM set and drop any tallies
  // from the aborted epoch — the replayed + completed crash epoch below
  // rebuilds a full complement of shaped sub-batches. The byte sample also
  // resets: recovery traffic is legitimately unshaped.
  AttachWatchdog();
  if (watchdog_) {
    watchdog_->ResetEpoch();
  }

  if (!recovered->metadata_full.empty()) {
    directory_.ApplyFull(recovered->metadata_full);
  }
  for (const Bytes& delta : recovered->metadata_deltas) {
    directory_.ApplyDelta(delta);
  }

  // Replay the unretired epochs' logged sub-batches so the adversary
  // observes the same paths again (§8), then complete each as a crash
  // epoch. With pipeline depth D the log can hold plans from up to D
  // epochs past the last durable checkpoint (D-1 closed-but-undurable
  // epochs plus the partial one); the plans carry their epoch, and each
  // epoch's group is replayed and completed oldest-first — completing one
  // advances the shards to the next logged epoch, exactly mirroring the
  // pre-crash timeline. Their commit decisions were never released (epoch
  // fate sharing), so dummy-completing them loses nothing acknowledged.
  // With no logged plans at all, one all-dummy crash epoch still runs.
  Stopwatch replay;
  const auto& plans = recovered->pending_plans;
  std::vector<size_t> replayed_per_shard(cfg_.num_shards, 0);
  size_t i = 0;
  do {
    replayed_per_shard.assign(cfg_.num_shards, 0);
    EpochId group_epoch = i < plans.size() ? plans[i].plan.epoch : 0;
    for (; i < plans.size() && plans[i].plan.epoch == group_epoch; ++i) {
      const RecoveryUnit::PendingPlan& pending = plans[i];
      // Mirror dispatch: under pipelining the write schedule advanced with
      // each batch, so the replayed physical trace matches the pre-crash
      // one exactly.
      if (cfg_.pipeline_epochs) {
        oram_->AdvanceShardWriteSchedule(pending.shard,
                                         WriteAdvanceForBatch(pending.plan.batch_index));
      }
      auto result = oram_->ReplayShardBatch(pending.shard, pending.plan);
      if (!result.ok()) {
        return result.status();
      }
      replayed_per_shard[pending.shard]++;
    }
    OBLADI_RETURN_IF_ERROR(CompleteCrashEpoch(replayed_per_shard));
  } while (i < plans.size());
  InstallPlanHook(/*rendezvous=*/true);
  recovered->breakdown.path_replay_us = replay.ElapsedMicros();
  recovered->breakdown.total_us += recovered->breakdown.path_replay_us;

  {
    std::lock_guard<std::mutex> lk(mu_);
    crashed_ = false;
    loaded_ = true;
    ResetEpochBatchesLocked();
    inflight_fetches_.clear();
    stats_.recoveries++;
  }
  if (breakdown != nullptr) {
    *breakdown = recovered->breakdown;
  }
  return Status::Ok();
}

ObladiStats ObladiStore::stats() const {
  ObladiStats out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = stats_;
  }
  MvtsoStats txn = engine_.stats();
  out.txn_begun = txn.begun;
  out.txn_committed = txn.committed;
  out.txn_aborted = txn.aborts_write_conflict + txn.aborts_cascade +
                    txn.aborts_unfinished_epoch + txn.aborts_batch_overflow +
                    txn.aborts_explicit;
  out.aborts_per_committed_txn =
      txn.committed == 0 ? 0
                         : static_cast<double>(out.txn_aborted) /
                               static_cast<double>(txn.committed);
  return out;
}

}  // namespace obladi
