#include "src/proxy/obladi_store.h"

#include <unordered_set>

#include "src/common/clock.h"
#include "src/common/serde.h"

namespace obladi {

namespace {

// Block payloads are fixed size; values are length-prefixed inside them.
Bytes EncodeValue(const std::string& value) {
  BinaryWriter w(value.size() + 4);
  w.PutString(value);
  return w.Take();
}

std::string DecodeValue(const Bytes& payload) {
  if (payload.size() < 4) {
    return "";
  }
  BinaryReader r(payload);
  return r.GetString();
}

}  // namespace

ObladiStore::ObladiStore(ObladiConfig cfg, std::shared_ptr<BucketStore> store,
                         std::shared_ptr<LogStore> log)
    : cfg_(cfg),
      store_(std::move(store)),
      log_(std::move(log)),
      directory_(cfg.oram.capacity) {
  encryptor_ = std::make_shared<Encryptor>(
      Encryptor::FromMasterKey(Bytes{'o', 'b', 'l', 'a', 'd', 'i'}, cfg_.oram.authenticated,
                               cfg_.seed ^ 0x9e3779b97f4a7c15ull));
  oram_ = std::make_unique<RingOram>(cfg_.oram, cfg_.oram_options, store_, encryptor_,
                                     cfg_.seed);

  if (cfg_.recovery.enabled) {
    cfg_.recovery.posmap_delta_pad_entries =
        cfg_.read_batches_per_epoch * cfg_.read_batch_size + cfg_.write_batch_size;
    recovery_ = std::make_unique<RecoveryUnit>(cfg_.recovery, log_, encryptor_);
    recovery_->SetMetadataProviders(
        [this] { return directory_.SerializeFull(); },
        [this] {
          // Pad the directory delta so its size does not reveal how many new
          // keys an epoch created (at most b_write writes can create keys).
          Bytes delta = directory_.SerializeDelta();
          size_t pad = cfg_.write_batch_size * 64 + 16;
          if (delta.size() < pad) {
            delta.resize(pad, 0);
          }
          return delta;
        });
    oram_->SetBatchPlannedHook(
        [this](const BatchPlan& plan) { return recovery_->LogReadBatchPlan(plan); });
  }
  epoch_batches_.resize(cfg_.read_batches_per_epoch);
}

ObladiStore::~ObladiStore() { Stop(); }

Status ObladiStore::Load(const std::vector<std::pair<Key, std::string>>& records) {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  std::vector<Bytes> values(cfg_.oram.capacity);
  for (const auto& [key, value] : records) {
    auto id = directory_.GetOrCreate(key);
    if (!id.ok()) {
      return id.status();
    }
    values[*id] = EncodeValue(value);
  }
  OBLADI_RETURN_IF_ERROR(oram_->Initialize(values));
  if (recovery_) {
    OBLADI_RETURN_IF_ERROR(recovery_->LogFullCheckpoint(*oram_));
  }
  std::lock_guard<std::mutex> lk(mu_);
  loaded_ = true;
  return Status::Ok();
}

Timestamp ObladiStore::Begin() { return engine_.Begin(); }

StatusOr<std::shared_future<Status>> ObladiStore::EnqueueFetch(const Key& key, BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) {
    return Status::Unavailable("proxy crashed");
  }
  auto it = inflight_fetches_.find(key);
  if (it != inflight_fetches_.end()) {
    stats_.fetch_dedups++;
    return it->second;
  }
  for (size_t b = next_dispatch_; b < epoch_batches_.size(); ++b) {
    if (epoch_batches_[b].size() < cfg_.read_batch_size) {
      PendingFetch fetch;
      fetch.id = id;
      fetch.key = key;
      fetch.done = std::make_shared<std::promise<Status>>();
      std::shared_future<Status> fut = fetch.done->get_future().share();
      epoch_batches_[b].push_back(std::move(fetch));
      inflight_fetches_.emplace(key, fut);
      stats_.oram_fetches++;
      return fut;
    }
  }
  return Status::ResourceExhausted("all read batches in this epoch are full");
}

StatusOr<std::string> ObladiStore::Read(Timestamp txn, const Key& key) {
  for (;;) {
    ReadOutcome outcome = engine_.Read(txn, key);
    if (outcome.kind == ReadOutcome::kAborted) {
      return Status::Aborted("transaction aborted");
    }
    if (outcome.kind == ReadOutcome::kValue) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.cache_hits++;
      }
      return outcome.value;
    }
    // kNeedBase: fetch through the ORAM via the epoch's read batches.
    auto id = directory_.Lookup(key);
    if (!id.ok()) {
      return id.status();  // unknown key
    }
    auto fut = EnqueueFetch(key, *id);
    if (!fut.ok()) {
      if (fut.status().code() == StatusCode::kResourceExhausted) {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.batch_overflow_aborts++;
      }
      engine_.Abort(txn);
      return Status::Aborted(fut.status().message());
    }
    Status st = fut->get();
    if (!st.ok()) {
      engine_.Abort(txn);
      return Status::Aborted("base fetch failed: " + st.message());
    }
    // Base installed; retry against the version cache.
  }
}

Status ObladiStore::Write(Timestamp txn, const Key& key, std::string value) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
  }
  if (value.size() + 4 > cfg_.oram.block_payload_size) {
    return Status::InvalidArgument("value exceeds block payload size");
  }
  auto id = directory_.GetOrCreate(key);
  if (!id.ok()) {
    return id.status();
  }
  return engine_.Write(txn, key, std::move(value));
}

Status ObladiStore::Commit(Timestamp txn) {
  std::shared_ptr<std::promise<Status>> waiter;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
    waiter = std::make_shared<std::promise<Status>>();
    commit_waiters_[txn] = waiter;
  }
  std::shared_future<Status> fut = waiter->get_future().share();
  Status st = engine_.Finish(txn);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    commit_waiters_.erase(txn);
    return st;
  }
  return fut.get();
}

void ObladiStore::Abort(Timestamp txn) { engine_.Abort(txn); }

Status ObladiStore::DispatchBatch(std::vector<PendingFetch> batch) {
  std::vector<BlockId> ids(cfg_.read_batch_size, kInvalidBlockId);
  for (size_t i = 0; i < batch.size(); ++i) {
    ids[i] = batch[i].id;
  }
  auto results = oram_->ReadBatch(ids);
  if (!results.ok()) {
    for (auto& fetch : batch) {
      fetch.done->set_value(results.status());
    }
    return results.status();
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    engine_.InstallBase(batch[i].key, DecodeValue((*results)[i]));
    batch[i].done->set_value(Status::Ok());
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.read_batches++;
  return Status::Ok();
}

Status ObladiStore::StepReadBatch() {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  std::vector<PendingFetch> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (crashed_) {
      return Status::Unavailable("proxy crashed");
    }
    if (next_dispatch_ >= epoch_batches_.size()) {
      return Status::FailedPrecondition("all read batches dispatched; finish the epoch");
    }
    batch = std::move(epoch_batches_[next_dispatch_]);
    ++next_dispatch_;
  }
  return DispatchBatch(std::move(batch));
}

Status ObladiStore::FinishEpochNow() {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  // Dispatch any remaining read batches so every epoch has the same shape.
  for (;;) {
    std::vector<PendingFetch> batch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (crashed_) {
        return Status::Unavailable("proxy crashed");
      }
      if (next_dispatch_ >= epoch_batches_.size()) {
        break;
      }
      batch = std::move(epoch_batches_[next_dispatch_]);
      ++next_dispatch_;
    }
    OBLADI_RETURN_IF_ERROR(DispatchBatch(std::move(batch)));
  }

  EpochOutcome outcome = engine_.EndEpoch(cfg_.write_batch_size);

  std::vector<std::pair<BlockId, Bytes>> writes;
  writes.reserve(outcome.final_writes.size());
  for (const auto& [key, value] : outcome.final_writes) {
    auto id = directory_.Lookup(key);
    if (!id.ok()) {
      return Status::Internal("committed write for unknown key");
    }
    writes.emplace_back(*id, EncodeValue(value));
  }
  OBLADI_RETURN_IF_ERROR(oram_->WriteBatch(writes, cfg_.write_batch_size));
  OBLADI_RETURN_IF_ERROR(oram_->FinishEpoch());
  if (recovery_) {
    OBLADI_RETURN_IF_ERROR(recovery_->LogEpochCommit(*oram_));
    OBLADI_RETURN_IF_ERROR(oram_->TruncateStaleVersions());
  }

  // Epoch fate sharing: only now do clients learn the decisions.
  std::unordered_set<Timestamp> committed(outcome.committed.begin(), outcome.committed.end());
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [ts, waiter] : commit_waiters_) {
    if (committed.count(ts) != 0) {
      waiter->set_value(Status::Ok());
    } else {
      waiter->set_value(Status::Aborted("epoch decision: aborted"));
    }
  }
  commit_waiters_.clear();
  epoch_batches_.assign(cfg_.read_batches_per_epoch, {});
  next_dispatch_ = 0;
  inflight_fetches_.clear();
  stats_.epochs++;
  return Status::Ok();
}

void ObladiStore::Start() {
  if (!cfg_.timed_mode || pacer_running_.exchange(true)) {
    return;
  }
  pacer_ = std::thread([this] { PacerLoop(); });
}

void ObladiStore::Stop() {
  if (pacer_running_.exchange(false) && pacer_.joinable()) {
    pacer_.join();
  }
}

void ObladiStore::PacerLoop() {
  while (pacer_running_.load()) {
    for (size_t i = 0; i < cfg_.read_batches_per_epoch && pacer_running_.load(); ++i) {
      PreciseSleepMicros(cfg_.batch_interval_us);
      Status st = StepReadBatch();
      if (!st.ok() && st.code() != StatusCode::kFailedPrecondition) {
        return;  // storage failure: stop pacing (clients observe aborts)
      }
    }
    if (!pacer_running_.load()) {
      return;
    }
    if (!FinishEpochNow().ok()) {
      return;
    }
  }
}

void ObladiStore::FailAllWaiters() {
  for (auto& batch : epoch_batches_) {
    for (auto& fetch : batch) {
      fetch.done->set_value(Status::Aborted("proxy crashed"));
    }
    batch.clear();
  }
  for (auto& [ts, waiter] : commit_waiters_) {
    waiter->set_value(Status::Aborted("proxy crashed"));
  }
  commit_waiters_.clear();
  inflight_fetches_.clear();
}

void ObladiStore::SimulateCrash() {
  Stop();
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  std::lock_guard<std::mutex> lk(mu_);
  crashed_ = true;
  FailAllWaiters();
  engine_.Reset();
  // All volatile ORAM metadata is gone with the proxy.
  oram_.reset();
}

Status ObladiStore::CompleteCrashEpoch(size_t replayed_batches) {
  // Per the security proof (Appendix B, H4): after replaying the aborted
  // epoch's logged batches, complete the epoch's fixed structure with fresh
  // dummy batches and an empty write batch, then commit it.
  std::vector<BlockId> dummies(cfg_.read_batch_size, kInvalidBlockId);
  for (size_t b = replayed_batches; b < cfg_.read_batches_per_epoch; ++b) {
    auto result = oram_->ReadBatch(dummies);
    if (!result.ok()) {
      return result.status();
    }
  }
  OBLADI_RETURN_IF_ERROR(oram_->WriteBatch({}, cfg_.write_batch_size));
  OBLADI_RETURN_IF_ERROR(oram_->FinishEpoch());
  OBLADI_RETURN_IF_ERROR(recovery_->LogEpochCommit(*oram_));
  return oram_->TruncateStaleVersions();
}

Status ObladiStore::RecoverFromCrash(RecoveryBreakdown* breakdown) {
  std::lock_guard<std::mutex> dlk(dispatch_mu_);
  if (!recovery_) {
    return Status::FailedPrecondition("recovery is not enabled");
  }
  auto recovered = recovery_->Recover();
  if (!recovered.ok()) {
    return recovered.status();
  }
  if (!recovered->has_state) {
    return Status::DataLoss("no durable state to recover");
  }

  uint64_t salt = recovered->epoch * 7919 + 1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    salt += stats_.recoveries * 104729;
  }
  oram_ = std::make_unique<RingOram>(cfg_.oram, cfg_.oram_options, store_, encryptor_,
                                     cfg_.seed ^ salt);
  OBLADI_RETURN_IF_ERROR(oram_->RestoreState(
      std::move(recovered->position_map), std::move(recovered->metas),
      std::move(recovered->stash), recovered->access_count, recovered->evict_count,
      recovered->epoch));
  oram_->SetBatchPlannedHook(
      [this](const BatchPlan& plan) { return recovery_->LogReadBatchPlan(plan); });

  if (!recovered->metadata_full.empty()) {
    directory_.ApplyFull(recovered->metadata_full);
  }
  for (const Bytes& delta : recovered->metadata_deltas) {
    directory_.ApplyDelta(delta);
  }

  // Replay the aborted epoch's logged read batches so the adversary observes
  // the same paths again (§8), then complete the crash-recovery epoch.
  Stopwatch replay;
  for (const BatchPlan& plan : recovered->pending_plans) {
    auto result = oram_->ReplayReadBatch(plan);
    if (!result.ok()) {
      return result.status();
    }
  }
  OBLADI_RETURN_IF_ERROR(CompleteCrashEpoch(recovered->pending_plans.size()));
  recovered->breakdown.path_replay_us = replay.ElapsedMicros();
  recovered->breakdown.total_us += recovered->breakdown.path_replay_us;

  {
    std::lock_guard<std::mutex> lk(mu_);
    crashed_ = false;
    loaded_ = true;
    epoch_batches_.assign(cfg_.read_batches_per_epoch, {});
    next_dispatch_ = 0;
    inflight_fetches_.clear();
    stats_.recoveries++;
  }
  if (breakdown != nullptr) {
    *breakdown = recovered->breakdown;
  }
  return Status::Ok();
}

ObladiStats ObladiStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace obladi
