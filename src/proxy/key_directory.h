// Application key -> dense BlockId mapping, kept at the trusted proxy.
//
// Dense ids let the position map be a flat array. The directory is part of
// the proxy's recoverable state: it grows append-only (ids are never reused),
// so per-epoch checkpoints carry only the new entries (padded by the caller)
// and full checkpoints carry the whole table.
#ifndef OBLADI_SRC_PROXY_KEY_DIRECTORY_H_
#define OBLADI_SRC_PROXY_KEY_DIRECTORY_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace obladi {

class KeyDirectory {
 public:
  explicit KeyDirectory(uint64_t capacity) : capacity_(capacity) {}

  StatusOr<BlockId> Lookup(const std::string& key) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = ids_.find(key);
    if (it == ids_.end()) {
      return Status::NotFound("unknown key");
    }
    return it->second;
  }

  StatusOr<BlockId> GetOrCreate(const std::string& key) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) {
      return it->second;
    }
    if (next_id_ >= capacity_) {
      return Status::ResourceExhausted("key directory at ORAM capacity");
    }
    BlockId id = next_id_++;
    ids_.emplace(key, id);
    keys_by_id_.push_back(key);
    return id;
  }

  uint64_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return next_id_;
  }
  uint64_t capacity() const { return capacity_; }

  Bytes SerializeFull() const {
    std::lock_guard<std::mutex> lk(mu_);
    BinaryWriter w;
    w.PutU64(next_id_);
    for (const auto& key : keys_by_id_) {
      w.PutString(key);
    }
    return w.Take();
  }

  // Entries added since the last Serialize* call.
  Bytes SerializeDelta() {
    std::lock_guard<std::mutex> lk(mu_);
    BinaryWriter w;
    w.PutU64(watermark_);
    w.PutU64(next_id_ - watermark_);
    for (uint64_t i = watermark_; i < next_id_; ++i) {
      w.PutString(keys_by_id_[i]);
    }
    watermark_ = next_id_;
    return w.Take();
  }

  void MarkCheckpointed() {
    std::lock_guard<std::mutex> lk(mu_);
    watermark_ = next_id_;
  }

  void ApplyFull(const Bytes& data) {
    std::lock_guard<std::mutex> lk(mu_);
    BinaryReader r(data);
    uint64_t n = r.GetU64();
    ids_.clear();
    keys_by_id_.clear();
    keys_by_id_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      std::string key = r.GetString();
      ids_.emplace(key, i);
      keys_by_id_.push_back(std::move(key));
    }
    next_id_ = n;
    watermark_ = n;
  }

  void ApplyDelta(const Bytes& data) {
    std::lock_guard<std::mutex> lk(mu_);
    BinaryReader r(data);
    uint64_t from = r.GetU64();
    uint64_t count = r.GetU64();
    for (uint64_t i = 0; i < count; ++i) {
      std::string key = r.GetString();
      uint64_t id = from + i;
      if (id >= next_id_) {
        ids_.emplace(key, id);
        keys_by_id_.push_back(std::move(key));
        next_id_ = id + 1;
      }
    }
    watermark_ = next_id_;
  }

 private:
  mutable std::mutex mu_;
  uint64_t capacity_;
  uint64_t next_id_ = 0;
  uint64_t watermark_ = 0;
  std::unordered_map<std::string, BlockId> ids_;
  std::vector<std::string> keys_by_id_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_PROXY_KEY_DIRECTORY_H_
