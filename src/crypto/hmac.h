// HMAC-SHA256 (RFC 2104) used for bucket MACs and freshness tags (Appendix A).
#ifndef OBLADI_SRC_CRYPTO_HMAC_H_
#define OBLADI_SRC_CRYPTO_HMAC_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/common/types.h"
#include "src/crypto/sha256.h"

namespace obladi {

class HmacSha256 {
 public:
  static constexpr size_t kTagSize = 32;
  using Tag = std::array<uint8_t, kTagSize>;

  HmacSha256(const uint8_t* key, size_t key_len);
  explicit HmacSha256(const Bytes& key) : HmacSha256(key.data(), key.size()) {}

  void Update(const uint8_t* data, size_t len) { inner_.Update(data, len); }
  void Update(const Bytes& data) { inner_.Update(data); }
  Tag Finalize();

  static Tag Compute(const Bytes& key, const Bytes& message);

  // Constant-time comparison.
  static bool Equal(const Tag& a, const Tag& b);

 private:
  Sha256 inner_;
  uint8_t opad_key_[64];
};

}  // namespace obladi

#endif  // OBLADI_SRC_CRYPTO_HMAC_H_
