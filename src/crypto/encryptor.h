// Randomized (optionally authenticated) encryption of fixed-size ORAM blocks.
//
// Wire format:   nonce (12B) || ciphertext (plaintext-sized) [|| tag (32B)]
//
// Randomized encryption is load-bearing for Ring ORAM security: rewriting a
// bucket must be indistinguishable from writing fresh data, so every Encrypt
// call draws a fresh nonce. The authenticated mode implements Appendix A:
// the tag covers nonce || ciphertext || aad, where callers bind aad to
// (location, epoch/batch counter) for freshness.
#ifndef OBLADI_SRC_CRYPTO_ENCRYPTOR_H_
#define OBLADI_SRC_CRYPTO_ENCRYPTOR_H_

#include <atomic>
#include <memory>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/csprng.h"
#include "src/crypto/hmac.h"

namespace obladi {

class Encryptor {
 public:
  static constexpr size_t kNonceSize = ChaCha20::kNonceSize;
  static constexpr size_t kTagSize = HmacSha256::kTagSize;

  // keys are arbitrary-length secrets; authenticated=true enables Appendix A
  // MAC mode. The nonce source is seeded independently per Encryptor.
  Encryptor(Bytes encryption_key, Bytes mac_key, bool authenticated, uint64_t nonce_seed);

  Encryptor(Encryptor&& other) noexcept
      : enc_key_(std::move(other.enc_key_)),
        mac_key_(std::move(other.mac_key_)),
        authenticated_(other.authenticated_),
        nonce_salt_(other.nonce_salt_),
        nonce_counter_(other.nonce_counter_.load()) {}

  // Convenience: derive both keys from one master secret.
  static Encryptor FromMasterKey(const Bytes& master, bool authenticated, uint64_t nonce_seed);

  bool authenticated() const { return authenticated_; }
  size_t Overhead() const { return kNonceSize + (authenticated_ ? kTagSize : 0); }

  // aad binds ciphertext to its context (location + freshness counter).
  Bytes Encrypt(const Bytes& plaintext, const Bytes& aad = {});
  StatusOr<Bytes> Decrypt(const Bytes& ciphertext, const Bytes& aad = {});

  // --- XOR path-read primitives (server-side read reduction) ---
  // The body transform of this encryptor's stream cipher under `nonce`
  // (kNonceSize bytes): maps a plaintext to the ciphertext body Encrypt
  // would have produced with that nonce, and a ciphertext body back to its
  // plaintext. Lets the ORAM regenerate a dummy slot's ciphertext body from
  // just the returned nonce, or decrypt an XOR-recovered target body.
  Bytes ApplyKeystream(const uint8_t* nonce, const Bytes& data) const;

  // Verify the Appendix-A MAC of a slot given its pieces (nonce, body, tag
  // of kTagSize bytes) instead of the assembled ciphertext. The one MAC
  // check in this class — Decrypt delegates to it. False in
  // non-authenticated mode (callers gate on authenticated()).
  bool VerifyBodyTag(const uint8_t* nonce, const uint8_t* body, size_t body_len,
                     const Bytes& aad, const uint8_t* tag) const;

 private:
  Bytes enc_key_;   // 32 bytes (SHA-256 of the provided key material)
  Bytes mac_key_;
  bool authenticated_;
  // Nonces are a random 4-byte salt plus a lock-free 8-byte counter: unique
  // per encryption (which is what CTR-mode security needs) without
  // serializing the concurrent bucket writers on a mutex.
  uint32_t nonce_salt_;
  std::atomic<uint64_t> nonce_counter_{1};
};

}  // namespace obladi

#endif  // OBLADI_SRC_CRYPTO_ENCRYPTOR_H_
