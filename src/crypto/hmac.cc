#include "src/crypto/hmac.h"

#include <cstring>

namespace obladi {

HmacSha256::HmacSha256(const uint8_t* key, size_t key_len) {
  uint8_t key_block[64];
  std::memset(key_block, 0, sizeof(key_block));
  if (key_len > 64) {
    Sha256::Digest d = Sha256::Hash(key, key_len);
    std::memcpy(key_block, d.data(), d.size());
  } else {
    std::memcpy(key_block, key, key_len);
  }

  uint8_t ipad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad_key_[i] = key_block[i] ^ 0x5c;
  }
  inner_.Update(ipad, sizeof(ipad));
}

HmacSha256::Tag HmacSha256::Finalize() {
  Sha256::Digest inner_digest = inner_.Finalize();
  Sha256 outer;
  outer.Update(opad_key_, sizeof(opad_key_));
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finalize();
}

HmacSha256::Tag HmacSha256::Compute(const Bytes& key, const Bytes& message) {
  HmacSha256 h(key);
  h.Update(message);
  return h.Finalize();
}

bool HmacSha256::Equal(const Tag& a, const Tag& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < kTagSize; ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace obladi
