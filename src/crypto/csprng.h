// ChaCha20-based deterministic random bit generator. Used for every security-
// relevant random choice in the system: leaf remapping, bucket permutations,
// dummy payloads, and encryption nonces. Seedable for reproducible tests.
#ifndef OBLADI_SRC_CRYPTO_CSPRNG_H_
#define OBLADI_SRC_CRYPTO_CSPRNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/crypto/chacha20.h"

namespace obladi {

class Csprng {
 public:
  // Seeded construction (deterministic). Use FromEntropy() for fresh streams.
  explicit Csprng(uint64_t seed = 1);

  static Csprng FromEntropy();

  void FillBytes(uint8_t* out, size_t len);
  Bytes RandomBytes(size_t len);

  uint64_t NextU64();
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64()); }

  // Uniform in [0, bound), rejection-sampled.
  uint64_t Uniform(uint64_t bound);

  // Fisher-Yates over [0, n): returns a uniformly random permutation.
  std::vector<uint32_t> RandomPermutation(uint32_t n);

 private:
  void Refill();

  ChaCha20 cipher_;
  uint8_t buf_[4096];
  size_t pos_;
};

}  // namespace obladi

#endif  // OBLADI_SRC_CRYPTO_CSPRNG_H_
