// ChaCha20 stream cipher (RFC 7539) — the symmetric cipher behind Obladi's
// randomized block encryption and the CSPRNG.
#ifndef OBLADI_SRC_CRYPTO_CHACHA20_H_
#define OBLADI_SRC_CRYPTO_CHACHA20_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/common/types.h"

namespace obladi {

class ChaCha20 {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kNonceSize = 12;

  ChaCha20(const uint8_t key[kKeySize], const uint8_t nonce[kNonceSize], uint32_t counter = 0);

  // XOR the keystream into data (encrypt == decrypt).
  void Crypt(uint8_t* data, size_t len);

  // Fill out with raw keystream (used by the DRBG).
  void Keystream(uint8_t* out, size_t len);

 private:
  void NextBlock();

  uint32_t state_[16];
  uint8_t block_[64];
  size_t block_pos_ = 64;  // forces generation on first use
};

}  // namespace obladi

#endif  // OBLADI_SRC_CRYPTO_CHACHA20_H_
