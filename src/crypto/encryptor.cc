#include "src/crypto/encryptor.h"

#include <cstring>

#include "src/crypto/sha256.h"

namespace obladi {

namespace {

Bytes NormalizeKey(const Bytes& key) {
  Sha256::Digest d = Sha256::Hash(key);
  return Bytes(d.begin(), d.end());
}

}  // namespace

Encryptor::Encryptor(Bytes encryption_key, Bytes mac_key, bool authenticated, uint64_t nonce_seed)
    : enc_key_(NormalizeKey(encryption_key)),
      mac_key_(NormalizeKey(mac_key)),
      authenticated_(authenticated) {
  Csprng salt_rng(nonce_seed);
  nonce_salt_ = salt_rng.NextU32();
}

Encryptor Encryptor::FromMasterKey(const Bytes& master, bool authenticated, uint64_t nonce_seed) {
  Bytes enc = master;
  enc.push_back('e');
  Bytes mac = master;
  mac.push_back('m');
  return Encryptor(std::move(enc), std::move(mac), authenticated, nonce_seed);
}

Bytes Encryptor::Encrypt(const Bytes& plaintext, const Bytes& aad) {
  uint8_t nonce[kNonceSize];
  uint64_t counter = nonce_counter_.fetch_add(1, std::memory_order_relaxed);
  std::memcpy(nonce, &nonce_salt_, 4);
  std::memcpy(nonce + 4, &counter, 8);

  Bytes out(kNonceSize + plaintext.size() + (authenticated_ ? kTagSize : 0));
  std::memcpy(out.data(), nonce, kNonceSize);
  std::memcpy(out.data() + kNonceSize, plaintext.data(), plaintext.size());

  ChaCha20 cipher(enc_key_.data(), nonce, /*counter=*/1);
  cipher.Crypt(out.data() + kNonceSize, plaintext.size());

  if (authenticated_) {
    HmacSha256 mac(mac_key_);
    mac.Update(out.data(), kNonceSize + plaintext.size());
    mac.Update(aad);
    HmacSha256::Tag tag = mac.Finalize();
    std::memcpy(out.data() + kNonceSize + plaintext.size(), tag.data(), kTagSize);
  }
  return out;
}

Bytes Encryptor::ApplyKeystream(const uint8_t* nonce, const Bytes& data) const {
  Bytes out = data;
  ChaCha20 cipher(enc_key_.data(), nonce, /*counter=*/1);
  cipher.Crypt(out.data(), out.size());
  return out;
}

bool Encryptor::VerifyBodyTag(const uint8_t* nonce, const uint8_t* body, size_t body_len,
                              const Bytes& aad, const uint8_t* tag) const {
  if (!authenticated_) {
    return false;
  }
  HmacSha256 mac(mac_key_);
  mac.Update(nonce, kNonceSize);
  mac.Update(body, body_len);
  mac.Update(aad);
  HmacSha256::Tag expected = mac.Finalize();
  HmacSha256::Tag provided;
  std::memcpy(provided.data(), tag, kTagSize);
  return HmacSha256::Equal(expected, provided);
}

StatusOr<Bytes> Encryptor::Decrypt(const Bytes& ciphertext, const Bytes& aad) {
  size_t overhead = Overhead();
  if (ciphertext.size() < overhead) {
    return Status::InvalidArgument("ciphertext shorter than overhead");
  }
  size_t pt_len = ciphertext.size() - overhead;

  if (authenticated_ &&
      !VerifyBodyTag(ciphertext.data(), ciphertext.data() + kNonceSize, pt_len, aad,
                     ciphertext.data() + kNonceSize + pt_len)) {
    return Status::IntegrityViolation("bucket MAC mismatch");
  }

  Bytes out(pt_len);
  std::memcpy(out.data(), ciphertext.data() + kNonceSize, pt_len);
  ChaCha20 cipher(enc_key_.data(), ciphertext.data(), /*counter=*/1);
  cipher.Crypt(out.data(), pt_len);
  return out;
}

}  // namespace obladi
