// FIPS 180-4 SHA-256, implemented from scratch (no external crypto deps).
#ifndef OBLADI_SRC_CRYPTO_SHA256_H_
#define OBLADI_SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/common/types.h"

namespace obladi {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  Digest Finalize();

  static Digest Hash(const uint8_t* data, size_t len);
  static Digest Hash(const Bytes& data) { return Hash(data.data(), data.size()); }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace obladi

#endif  // OBLADI_SRC_CRYPTO_SHA256_H_
