#include "src/crypto/chacha20.h"

#include <cstring>

namespace obladi {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl(d, 16);
  c += d;
  b ^= c;
  b = Rotl(b, 12);
  a += b;
  d ^= a;
  d = Rotl(d, 8);
  c += d;
  b ^= c;
  b = Rotl(b, 7);
}

}  // namespace

ChaCha20::ChaCha20(const uint8_t key[kKeySize], const uint8_t nonce[kNonceSize],
                   uint32_t counter) {
  static const uint8_t kSigma[16] = {'e', 'x', 'p', 'a', 'n', 'd', ' ', '3',
                                     '2', '-', 'b', 'y', 't', 'e', ' ', 'k'};
  state_[0] = LoadLe32(kSigma);
  state_[1] = LoadLe32(kSigma + 4);
  state_[2] = LoadLe32(kSigma + 8);
  state_[3] = LoadLe32(kSigma + 12);
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = LoadLe32(key + 4 * i);
  }
  state_[12] = counter;
  state_[13] = LoadLe32(nonce);
  state_[14] = LoadLe32(nonce + 4);
  state_[15] = LoadLe32(nonce + 8);
}

void ChaCha20::NextBlock() {
  uint32_t x[16];
  std::memcpy(x, state_, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    StoreLe32(block_ + 4 * i, x[i] + state_[i]);
  }
  state_[12]++;  // block counter
  block_pos_ = 0;
}

void ChaCha20::Crypt(uint8_t* data, size_t len) {
  size_t i = 0;
  while (i < len) {
    if (block_pos_ == 64) {
      NextBlock();
    }
    size_t take = 64 - block_pos_;
    if (take > len - i) {
      take = len - i;
    }
    // Chunked XOR; the inner loop auto-vectorizes.
    const uint8_t* ks = block_ + block_pos_;
    for (size_t j = 0; j < take; ++j) {
      data[i + j] ^= ks[j];
    }
    block_pos_ += take;
    i += take;
  }
}

void ChaCha20::Keystream(uint8_t* out, size_t len) {
  size_t i = 0;
  while (i < len) {
    if (block_pos_ == 64) {
      NextBlock();
    }
    size_t take = 64 - block_pos_;
    if (take > len - i) {
      take = len - i;
    }
    std::memcpy(out + i, block_ + block_pos_, take);
    block_pos_ += take;
    i += take;
  }
}

}  // namespace obladi
