#include "src/crypto/csprng.h"

#include <chrono>
#include <cstring>
#include <random>

#include "src/crypto/sha256.h"

namespace obladi {

namespace {

ChaCha20 CipherFromSeed(uint64_t seed) {
  // Derive a 32-byte key from the seed via SHA-256; zero nonce (each Csprng
  // instance has a distinct key, so streams never collide).
  uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<uint8_t>(seed >> (8 * i));
  }
  Sha256::Digest key = Sha256::Hash(seed_bytes, sizeof(seed_bytes));
  uint8_t nonce[ChaCha20::kNonceSize] = {0};
  return ChaCha20(key.data(), nonce);
}

}  // namespace

Csprng::Csprng(uint64_t seed) : cipher_(CipherFromSeed(seed)), pos_(sizeof(buf_)) {}

Csprng Csprng::FromEntropy() {
  std::random_device rd;
  uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  seed ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return Csprng(seed);
}

void Csprng::Refill() {
  cipher_.Keystream(buf_, sizeof(buf_));
  pos_ = 0;
}

void Csprng::FillBytes(uint8_t* out, size_t len) {
  while (len > 0) {
    if (pos_ == sizeof(buf_)) {
      Refill();
    }
    size_t take = sizeof(buf_) - pos_;
    if (take > len) {
      take = len;
    }
    std::memcpy(out, buf_ + pos_, take);
    pos_ += take;
    out += take;
    len -= take;
  }
}

Bytes Csprng::RandomBytes(size_t len) {
  Bytes out(len);
  FillBytes(out.data(), len);
  return out;
}

uint64_t Csprng::NextU64() {
  uint64_t v;
  FillBytes(reinterpret_cast<uint8_t*>(&v), sizeof(v));
  return v;
}

uint64_t Csprng::Uniform(uint64_t bound) {
  assert(bound > 0);
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::vector<uint32_t> Csprng::RandomPermutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = static_cast<uint32_t>(Uniform(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace obladi
